//! A compact fixed-capacity bit set.
//!
//! Used throughout the workspace for domains (sets of target elements),
//! graph adjacency, and subset dynamic programming. The standard library
//! has no bit set and external bit-set crates are not part of this
//! workspace's dependency budget, so we provide a small, well-tested one.

/// A fixed-capacity set of `usize` values below `capacity`.
///
/// Backed by `u64` blocks. All operations on two sets require equal
/// capacities (checked with `debug_assert!` in release-hot paths).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    blocks: Vec<u64>,
    capacity: usize,
}

const BITS: usize = 64;

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            blocks: vec![0; capacity.div_ceil(BITS)],
            capacity,
        }
    }

    /// Creates a full set containing every value in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for b in &mut s.blocks {
            *b = u64::MAX;
        }
        s.trim();
        s
    }

    /// Clears excess bits beyond `capacity` in the last block.
    fn trim(&mut self) {
        let extra = self.blocks.len() * BITS - self.capacity;
        if extra > 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// The maximum number of distinct values this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `v`, returning `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, v: usize) -> bool {
        debug_assert!(v < self.capacity, "bitset insert out of range");
        let (blk, bit) = (v / BITS, v % BITS);
        let had = self.blocks[blk] & (1 << bit) != 0;
        self.blocks[blk] |= 1 << bit;
        !had
    }

    /// Removes `v`, returning `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: usize) -> bool {
        debug_assert!(v < self.capacity, "bitset remove out of range");
        let (blk, bit) = (v / BITS, v % BITS);
        let had = self.blocks[blk] & (1 << bit) != 0;
        self.blocks[blk] &= !(1 << bit);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        if v >= self.capacity {
            return false;
        }
        self.blocks[v / BITS] & (1 << (v % BITS)) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        for b in &mut self.blocks {
            *b = 0;
        }
    }

    /// Inserts every value in `0..capacity` (the in-place analogue of
    /// [`BitSet::full`], so hot loops can reset a scratch set without
    /// reallocating).
    pub fn insert_all(&mut self) {
        for b in &mut self.blocks {
            *b = u64::MAX;
        }
        self.trim();
    }

    /// Re-dimensions the set to `capacity` and clears it, reusing the
    /// existing block allocation where possible — the scratch-pool
    /// analogue of [`BitSet::new`] for buffers that outlive one
    /// instance but not one batch.
    pub fn reset(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.blocks.clear();
        self.blocks.resize(capacity.div_ceil(BITS), 0);
    }

    /// In-place union: `self ∪= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= *b;
        }
    }

    /// In-place intersection: `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= *b;
        }
    }

    /// In-place difference: `self ∖= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !*b;
        }
    }

    /// `|self ∩ other|` without materialising the intersection — the
    /// popcount the elimination-style graph algorithms lean on (live
    /// degrees, common-neighbour counts, clique tests).
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether the two sets share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// The smallest element, if any.
    pub fn min(&self) -> Option<usize> {
        for (i, &b) in self.blocks.iter().enumerate() {
            if b != 0 {
                return Some(i * BITS + b.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The backing `u64` words, least-significant bit first — exactly
    /// `capacity.div_ceil(64)` of them, with every bit at position
    /// `>= capacity` guaranteed zero. This is the raw form the flat
    /// propagation programs copy into their
    /// [`arena`](crate::arena)-resident pools.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.blocks
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            block: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }
}

impl Default for BitSet {
    /// The empty set with capacity 0 (useful as a `mem::take`
    /// placeholder in hot loops).
    fn default() -> Self {
        BitSet::new(0)
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a set sized to exactly fit the maximum value.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for v in values {
            s.insert(v);
        }
        s
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
pub struct Iter<'a> {
    set: &'a BitSet,
    block: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.block * BITS + bit);
            }
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.block];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports false");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(
            !s.contains(1000),
            "out-of-range contains is false, not a panic"
        );
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_respects_capacity() {
        for cap in [0, 1, 63, 64, 65, 128, 200] {
            let s = BitSet::full(cap);
            assert_eq!(s.len(), cap, "capacity {cap}");
            assert_eq!(s.iter().count(), cap);
        }
    }

    #[test]
    fn set_algebra() {
        let mut a: BitSet = [1usize, 3, 5, 7].into_iter().collect();
        let b: BitSet = [3usize, 4, 5].into_iter().collect();
        // Make capacities equal for the binary ops.
        let mut b2 = BitSet::new(a.capacity());
        for v in b.iter() {
            b2.insert(v);
        }
        let mut u = a.clone();
        u.union_with(&b2);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5, 7]);
        let mut i = a.clone();
        i.intersect_with(&b2);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3, 5]);
        a.difference_with(&b2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 7]);
        assert!(i.is_subset(&u));
        assert!(!u.is_subset(&i));
        assert!(a.is_disjoint(&i));
    }

    #[test]
    fn counting_ops_match_materialised_sets() {
        let a: BitSet = [1usize, 3, 5, 64, 70, 90].into_iter().collect();
        let mut b = BitSet::new(a.capacity());
        for v in [3usize, 5, 70, 89] {
            b.insert(v);
        }
        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(a.intersection_len(&b), inter.len());
        assert_eq!(a.intersection_len(&BitSet::new(a.capacity())), 0);
        assert_eq!(a.intersection_len(&a), a.len());
    }

    #[test]
    fn min_and_iteration_order() {
        let s: BitSet = [70usize, 2, 65].into_iter().collect();
        assert_eq!(s.min(), Some(2));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 65, 70]);
        assert_eq!(BitSet::new(10).min(), None);
    }

    #[test]
    fn clear_and_empty() {
        let mut s = BitSet::full(100);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn reset_matches_new_at_any_capacity() {
        let mut s = BitSet::full(130);
        for cap in [0usize, 1, 64, 65, 130, 200, 63] {
            s.reset(cap);
            assert_eq!(s, BitSet::new(cap), "capacity {cap}");
            assert_eq!(s.capacity(), cap);
            assert!(s.is_empty());
            if cap > 0 {
                s.insert(cap - 1);
                assert_eq!(s.len(), 1);
            }
        }
    }

    #[test]
    fn insert_all_matches_full() {
        for cap in [0, 1, 63, 64, 65, 130] {
            let mut s = BitSet::new(cap);
            if cap > 0 {
                s.insert(cap - 1);
            }
            s.insert_all();
            assert_eq!(s, BitSet::full(cap), "capacity {cap}");
            assert_eq!(s.len(), cap);
        }
    }

    #[test]
    fn debug_format() {
        let s: BitSet = [1usize, 2].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1, 2}");
    }
}

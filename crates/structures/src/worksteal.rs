//! Hand-rolled work-stealing scheduling primitives for batch drivers.
//!
//! The serving regime solves *batches* of independent instances against
//! one fixed template, so the only scheduling problem is distributing a
//! range of instance indices across workers whose per-item cost varies
//! wildly (a Schaefer-routed instance is microseconds; a generic-search
//! instance can be a thousand times that). External work-stealing
//! crates are outside this workspace's dependency budget, so the two
//! classic ingredients are built here from `std` alone:
//!
//! * [`ChunkClaimer`] — a single atomic claim counter handing out
//!   contiguous index chunks. Claiming is one `fetch_add`, so workers
//!   start instantly and contention is one cache line no matter how
//!   many items the batch has.
//! * [`StealDeque`] — a per-worker deque of claimed-but-unprocessed
//!   indices. The owner drains it from the front (preserving the
//!   cache-friendly submission order); an idle worker steals the *back
//!   half* in one lock acquisition, halving the imbalance per steal the
//!   way classic work-stealing schedulers do.
//!
//! [`WorkStealQueue`] composes the two: claim a chunk when the local
//! deque runs dry, steal half from the richest victim when the claimer
//! is exhausted, report `None` only when no queued work is visible
//! anywhere. Every index in `0..total` is handed out **exactly once**
//! across all workers (pinned by the tests below, including under
//! thread contention), which is what lets a batch driver write results
//! into pre-sized output slots without synchronizing on them.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// An atomic claim counter over `0..total`, handing out disjoint
/// contiguous chunks.
#[derive(Debug)]
pub struct ChunkClaimer {
    next: AtomicUsize,
    total: usize,
    chunk: usize,
}

impl ChunkClaimer {
    /// Creates a claimer over `0..total` handing out chunks of (at
    /// most) `chunk` indices.
    ///
    /// # Panics
    /// Panics if `chunk == 0`.
    pub fn new(total: usize, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        ChunkClaimer {
            next: AtomicUsize::new(0),
            total,
            chunk,
        }
    }

    /// Claims the next chunk. Returns `None` once `0..total` is
    /// exhausted. Chunks are disjoint and cover the range exactly.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(start..(start + self.chunk).min(self.total))
    }
}

/// A per-worker deque supporting owner pops from the front and
/// steal-half transfers from the back.
///
/// A `Mutex<VecDeque>` rather than a lock-free Chase–Lev deque: every
/// critical section is a handful of pointer moves, the deque is touched
/// once per *instance* (not per search node), and the straightforward
/// locking makes the exactly-once accounting auditable.
#[derive(Debug, Default)]
pub struct StealDeque<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> StealDeque<T> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        StealDeque {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends items at the back.
    pub fn push_batch(&self, items: impl IntoIterator<Item = T>) {
        self.inner.lock().expect("deque poisoned").extend(items);
    }

    /// Pops from the front (owner side).
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().expect("deque poisoned").pop_front()
    }

    /// Current length (a racy snapshot, used only as a steal heuristic).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("deque poisoned").len()
    }

    /// Whether the deque is empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Steals the back half — `ceil(len / 2)` items — appending them to
    /// `thief` in order. Returns how many items moved (0 if the victim
    /// was empty by the time the lock was taken).
    pub fn steal_half_into(&self, thief: &StealDeque<T>) -> usize {
        // Lock order: victim first, then thief. Safe because a stealing
        // worker only ever locks its *own* (empty) deque as the thief,
        // and never steals from itself, so no cycle can form.
        let mut victim = self.inner.lock().expect("deque poisoned");
        let n = victim.len();
        if n == 0 {
            return 0;
        }
        let take = n.div_ceil(2);
        let stolen = victim.split_off(n - take);
        drop(victim);
        let count = stolen.len();
        thief.inner.lock().expect("deque poisoned").extend(stolen);
        count
    }
}

/// Work-stealing distribution of the indices `0..total` across a fixed
/// set of workers: chunked claiming from a shared counter, steal-half
/// between per-worker deques once the counter runs out.
#[derive(Debug)]
pub struct WorkStealQueue {
    claimer: ChunkClaimer,
    locals: Vec<StealDeque<usize>>,
}

impl WorkStealQueue {
    /// Creates a queue over `0..total` for `workers` workers, claiming
    /// `chunk` indices at a time.
    ///
    /// # Panics
    /// Panics if `workers == 0` or `chunk == 0`.
    pub fn new(total: usize, workers: usize, chunk: usize) -> Self {
        assert!(workers > 0, "at least one worker");
        WorkStealQueue {
            claimer: ChunkClaimer::new(total, chunk),
            locals: (0..workers).map(|_| StealDeque::new()).collect(),
        }
    }

    /// Number of workers this queue was built for.
    pub fn workers(&self) -> usize {
        self.locals.len()
    }

    /// Hands `worker` its next index, or `None` when no queued work is
    /// left anywhere. Each index in `0..total` is returned exactly once
    /// across all workers. A `None` means every index has been handed
    /// out (some may still be *in progress* on other workers — workers
    /// that received them will complete them).
    ///
    /// # Panics
    /// Panics if `worker` is out of range.
    pub fn pop(&self, worker: usize) -> Option<usize> {
        loop {
            // 1. Local work, in submission order.
            if let Some(i) = self.locals[worker].pop() {
                return Some(i);
            }
            // 2. Claim a fresh chunk: take its first index, queue the
            //    rest locally (where neighbours may steal them back).
            if let Some(range) = self.claimer.claim() {
                let first = range.start;
                self.locals[worker].push_batch(range.skip(1));
                return Some(first);
            }
            // 3. Steal the back half from the richest victim.
            let victim = (0..self.locals.len())
                .filter(|&w| w != worker)
                .map(|w| (self.locals[w].len(), w))
                .max();
            match victim {
                Some((n, v)) if n > 0 => {
                    // The victim may have drained between the snapshot
                    // and the steal; a zero-item steal just re-scans.
                    self.locals[v].steal_half_into(&self.locals[worker]);
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn claimer_chunks_are_disjoint_and_cover() {
        let c = ChunkClaimer::new(23, 5);
        let mut seen = Vec::new();
        while let Some(r) = c.claim() {
            seen.extend(r);
        }
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
        assert!(c.claim().is_none(), "exhausted stays exhausted");
        assert!(ChunkClaimer::new(0, 4).claim().is_none());
    }

    #[test]
    fn single_worker_pops_everything_in_order() {
        let q = WorkStealQueue::new(11, 1, 4);
        let got: Vec<usize> = std::iter::from_fn(|| q.pop(0)).collect();
        assert_eq!(got, (0..11).collect::<Vec<_>>());
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn steal_half_takes_the_back_half() {
        let d = StealDeque::new();
        d.push_batch(0..10usize);
        let thief = StealDeque::new();
        assert_eq!(d.steal_half_into(&thief), 5);
        assert_eq!(d.len(), 5);
        // Victim keeps the front, thief got the back, both in order.
        let keep: Vec<usize> = std::iter::from_fn(|| d.pop()).collect();
        let got: Vec<usize> = std::iter::from_fn(|| thief.pop()).collect();
        assert_eq!(keep, vec![0, 1, 2, 3, 4]);
        assert_eq!(got, vec![5, 6, 7, 8, 9]);
        // Odd lengths steal the larger half; singletons move whole.
        let d = StealDeque::new();
        d.push_batch(0..3usize);
        assert_eq!(d.steal_half_into(&thief), 2);
        let d = StealDeque::new();
        d.push_batch([7usize]);
        assert_eq!(d.steal_half_into(&thief), 1);
        assert_eq!(d.steal_half_into(&thief), 0, "empty victim");
    }

    #[test]
    fn idle_worker_steals_from_a_loaded_one() {
        // Chunk ≥ total: worker 0's first pop claims everything; worker
        // 1 must then be fed by stealing, not starve.
        let q = WorkStealQueue::new(10, 2, 64);
        assert_eq!(q.pop(0), Some(0));
        let stolen = q.pop(1).expect("worker 1 steals");
        assert!(stolen > 0);
        let mut seen: HashSet<usize> = [0, stolen].into_iter().collect();
        for w in [0usize, 1] {
            while let Some(i) = q.pop(w) {
                assert!(seen.insert(i), "index {i} handed out twice");
            }
        }
        assert_eq!(seen, (0..10).collect());
    }

    #[test]
    fn concurrent_pops_hand_out_every_index_exactly_once() {
        for (total, workers, chunk) in [(103usize, 4usize, 4usize), (64, 3, 1), (7, 8, 2)] {
            let q = WorkStealQueue::new(total, workers, chunk);
            let per_worker: Vec<Vec<usize>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let q = &q;
                        s.spawn(move || {
                            let mut got = Vec::new();
                            while let Some(i) = q.pop(w) {
                                got.push(i);
                                // Uneven per-item cost to force steals.
                                if i % 3 == 0 {
                                    std::thread::yield_now();
                                }
                            }
                            got
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let mut seen = HashSet::new();
            for got in &per_worker {
                for &i in got {
                    assert!(seen.insert(i), "index {i} handed out twice");
                }
            }
            assert_eq!(
                seen,
                (0..total).collect(),
                "total {total} workers {workers} chunk {chunk}"
            );
        }
    }
}

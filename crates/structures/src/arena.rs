//! A flat `u64`-word arena for propagation engines, plus the word-level
//! kernels that operate on slices carved out of it.
//!
//! The compiled propagation route (`cqcs-pebble`'s `ProgramPropagator`)
//! keeps **all** of its per-instance mutable state — domains, the undo
//! trail, the worklist ring and its membership bitset, the revision
//! scratch sets — in one contiguous [`PropArena`] allocation, addressed
//! by precomputed word offsets instead of nested `Vec<BitSet>`
//! structures. That buys two things:
//!
//! 1. **O(words) reset.** Rebinding a worker to the next instance of a
//!    batch is a single `clear + resize` of one `Vec<u64>` followed by
//!    block writes for the regions that start non-zero (full domains,
//!    domain sizes) — no per-object traversal, no allocator traffic
//!    once the high-water mark is reached.
//! 2. **Cache residency.** The MAC hot loop touches domains, supports,
//!    and scratch accumulators in tight alternation; packing them into
//!    one block keeps the working set dense and the index arithmetic
//!    branch-free.
//!
//! The free-standing kernels ([`or_into`], [`and_into`],
//! [`and_not_into`], [`fill_ones`], [`for_each_set_bit`], [`all_zero`])
//! are the whole-word forms of the [`BitSet`](crate::BitSet)
//! operations, written over plain `&[u64]` slices so the compiler can
//! autovectorize them and so they apply to any region of the arena
//! without constructing a set object.

/// A bump-style arena of `u64` words. Regions are carved out by the
/// owner at fixed offsets; the arena itself only manages the backing
/// allocation and its O(words) reset.
#[derive(Debug, Clone, Default)]
pub struct PropArena {
    words: Vec<u64>,
}

impl PropArena {
    /// An empty arena (no backing allocation yet).
    pub fn new() -> PropArena {
        PropArena::default()
    }

    /// Re-dimensions the arena to exactly `len` words, all zero, in
    /// O(`len`) with no reallocation once the high-water mark is
    /// reached: `clear` on a `Vec<u64>` is O(1) (no drops), and
    /// `resize` reuses the existing capacity.
    pub fn reset_zeroed(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len, 0);
    }

    /// Re-dimensions the arena to exactly `len` words while
    /// **preserving** the first `prefix` words; everything from `prefix`
    /// on is zeroed. The delta-rebind path uses this to keep the
    /// fixed-offset regions (domains, sizes, trail) resident while the
    /// tail regions (worklist ring, membership bitset) are re-sized for
    /// the new tuple count.
    ///
    /// # Panics
    /// Panics if `prefix` exceeds either the current or the new length.
    pub fn resize_tail_zeroed(&mut self, prefix: usize, len: usize) {
        assert!(prefix <= self.words.len() && prefix <= len);
        self.words.resize(len, 0);
        self.words[prefix..].fill(0);
    }

    /// Number of words currently carved out.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the arena currently holds no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The backing words, read-only.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The backing words, mutable — the owner indexes regions out of
    /// this one slice (typically via `split_at_mut` chains at its
    /// precomputed offsets).
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }
}

/// `dst |= src`, word by word.
///
/// # Panics
/// Debug-panics if the slices differ in length.
#[inline]
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= *s;
    }
}

/// `dst &= src`, word by word.
///
/// # Panics
/// Debug-panics if the slices differ in length.
#[inline]
pub fn and_into(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d &= *s;
    }
}

/// `dst &= !src`, word by word (set difference).
///
/// # Panics
/// Debug-panics if the slices differ in length.
#[inline]
pub fn and_not_into(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d &= !*s;
    }
}

/// Sets the first `bits` bits of `dst` and clears the rest — the slice
/// analogue of [`BitSet::insert_all`](crate::BitSet::insert_all) for a
/// region whose logical capacity is `bits`.
///
/// # Panics
/// Debug-panics if `dst` is shorter than `bits` requires.
#[inline]
pub fn fill_ones(dst: &mut [u64], bits: usize) {
    debug_assert!(dst.len() >= bits.div_ceil(64));
    let full = bits / 64;
    for d in dst.iter_mut().take(full) {
        *d = u64::MAX;
    }
    for (i, d) in dst.iter_mut().enumerate().skip(full) {
        *d = if i == full && !bits.is_multiple_of(64) {
            u64::MAX >> (64 - bits % 64)
        } else {
            0
        };
    }
}

/// Whether every word is zero.
#[inline]
pub fn all_zero(words: &[u64]) -> bool {
    words.iter().all(|&w| w == 0)
}

/// Total set bits across the slice.
#[inline]
pub fn count_ones(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Calls `f(i)` for every set bit `i`, ascending — the word-windowed
/// iteration pattern (`trailing_zeros` + clear-lowest) shared by the
/// propagation hot loops.
#[inline]
pub fn for_each_set_bit(words: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &w) in words.iter().enumerate() {
        let mut bits = w;
        while bits != 0 {
            f(wi * 64 + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitSet;

    #[test]
    fn reset_zeroed_is_exact() {
        let mut a = PropArena::new();
        assert!(a.is_empty());
        a.reset_zeroed(10);
        assert_eq!(a.len(), 10);
        a.words_mut().fill(u64::MAX);
        // Shrink, grow, and same-size resets all land on all-zero.
        for len in [3usize, 10, 25, 0, 7] {
            a.reset_zeroed(len);
            assert_eq!(a.len(), len);
            assert!(all_zero(a.words()), "len {len}");
        }
    }

    #[test]
    fn resize_tail_preserves_prefix() {
        let mut a = PropArena::new();
        a.reset_zeroed(8);
        for (i, w) in a.words_mut().iter_mut().enumerate() {
            *w = i as u64 + 1;
        }
        a.resize_tail_zeroed(5, 12);
        assert_eq!(a.len(), 12);
        assert_eq!(&a.words()[..5], &[1, 2, 3, 4, 5]);
        assert!(all_zero(&a.words()[5..]));
        // Shrinking below the old length keeps the prefix too.
        a.words_mut().fill(9);
        a.resize_tail_zeroed(3, 4);
        assert_eq!(a.words(), &[9, 9, 9, 0]);
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut a = PropArena::new();
        a.reset_zeroed(1000);
        let ptr = a.words().as_ptr();
        a.reset_zeroed(10);
        a.reset_zeroed(1000);
        assert_eq!(
            ptr,
            a.words().as_ptr(),
            "no realloc under the high-water mark"
        );
    }

    #[test]
    fn kernels_match_bitset_ops() {
        let a: BitSet = [1usize, 3, 64, 100, 127].into_iter().collect();
        let mut b = BitSet::new(a.capacity());
        for v in [3usize, 64, 65, 99] {
            b.insert(v);
        }
        let (aw, bw) = (a.words().to_vec(), b.words().to_vec());

        let mut d = aw.clone();
        or_into(&mut d, &bw);
        let mut m = a.clone();
        m.union_with(&b);
        assert_eq!(d, m.words());

        let mut d = aw.clone();
        and_into(&mut d, &bw);
        let mut m = a.clone();
        m.intersect_with(&b);
        assert_eq!(d, m.words());

        let mut d = aw.clone();
        and_not_into(&mut d, &bw);
        let mut m = a.clone();
        m.difference_with(&b);
        assert_eq!(d, m.words());

        assert_eq!(count_ones(&aw), a.len());
        assert!(!all_zero(&aw));
        assert!(all_zero(BitSet::new(128).words()));
    }

    #[test]
    fn fill_ones_matches_full_bitset() {
        for bits in [0usize, 1, 63, 64, 65, 128, 130] {
            let mut d = vec![0xdead_beefu64; bits.div_ceil(64).max(2)];
            fill_ones(&mut d, bits);
            let full = BitSet::full(bits);
            assert_eq!(&d[..full.words().len()], full.words(), "bits {bits}");
            assert!(
                all_zero(&d[full.words().len()..]),
                "tail cleared, bits {bits}"
            );
            assert_eq!(count_ones(&d), bits);
        }
    }

    #[test]
    fn for_each_set_bit_is_ascending_and_complete() {
        let s: BitSet = [0usize, 2, 63, 64, 120, 190].into_iter().collect();
        let mut seen = Vec::new();
        for_each_set_bit(s.words(), |v| seen.push(v));
        assert_eq!(seen, s.iter().collect::<Vec<_>>());
        for_each_set_bit(&[], |_| panic!("no bits in an empty slice"));
    }
}

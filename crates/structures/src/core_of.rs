//! Cores and retracts.
//!
//! A structure is a *core* if every endomorphism is surjective; every
//! finite structure has a unique core up to isomorphism, namely its
//! smallest retract. Cores power conjunctive-query **minimization**
//! (the classic Chandra–Merlin application recalled in §1–2 of the
//! paper): the minimal equivalent of a query `Q` is the canonical query
//! of the core of its canonical database.
//!
//! Computing cores is NP-hard in general; this implementation removes
//! one element at a time via retraction search and is intended for the
//! query-sized structures minimization actually sees.

use crate::homomorphism::extend_homomorphism;
use crate::structure::{Element, Structure};

/// The result of a core computation.
#[derive(Debug, Clone)]
pub struct CoreResult {
    /// The core itself (an induced substructure of the input, with
    /// elements renamed densely).
    pub core: Structure,
    /// `retained[e]` is `Some(c)` iff input element `e` survives into the
    /// core as element `c`.
    pub retained: Vec<Option<Element>>,
    /// A retraction from the input onto the retained elements, composed
    /// with the renaming: `retraction[e]` is the core element the input
    /// element `e` folds onto.
    pub retraction: Vec<Element>,
}

/// Computes the core of `s` by repeatedly retracting away one element.
///
/// At each round the algorithm looks for an element `x` such that some
/// endomorphism of the current structure avoids `x`; if found, the
/// structure is replaced by the induced substructure without `x`. When no
/// element can be removed, the remainder is a core (an endomorphism with
/// a smaller image would in particular avoid some element).
pub fn core_of(s: &Structure) -> CoreResult {
    let mut current = s.clone();
    // retraction_to_current[e]: where input element e currently sits
    // (as an element of `current`).
    let mut to_current: Vec<Element> = s.elements().collect();

    'shrink: loop {
        let n = current.universe();
        for x in 0..n {
            let keep: Vec<bool> = (0..n).map(|i| i != x).collect();
            let (sub, rename) = current.restrict(&keep);
            // An endomorphism of `current` avoiding x is exactly a
            // homomorphism current → sub (after renaming).
            if let Some(h) = extend_homomorphism(&current, &sub, &[]) {
                // Input elements now sit at h(previous position),
                // expressed in `sub`'s dense naming.
                for slot in to_current.iter_mut() {
                    *slot = h.apply(*slot);
                }
                let _ = rename;
                current = sub;
                continue 'shrink;
            }
        }
        break;
    }

    let retained: Vec<Option<Element>> = {
        // An input element e is retained iff it still names itself: we
        // recover this by checking which input elements map bijectively.
        // Build the inverse: core element c came from the input elements
        // folding onto it; `e` is "retained" if it is the canonical
        // preimage we kept. Since `restrict` keeps original elements, an
        // input element is retained iff following the fold chain, it was
        // never removed. We reconstruct that by tracking which input
        // elements map to distinct core elements *and* were kept at each
        // step; simplest faithful criterion: e is retained iff
        // to_current[e] has e as the minimal input preimage.
        let mut first_preimage: Vec<Option<usize>> = vec![None; current.universe()];
        for (e, c) in to_current.iter().enumerate() {
            let slot = &mut first_preimage[c.index()];
            if slot.is_none() {
                *slot = Some(e);
            }
        }
        let mut retained = vec![None; s.universe()];
        for (c, pre) in first_preimage.iter().enumerate() {
            if let Some(e) = pre {
                retained[*e] = Some(Element(c as u32));
            }
        }
        retained
    };

    CoreResult {
        core: current,
        retained,
        retraction: to_current,
    }
}

/// Whether `s` is a core: no endomorphism avoids any element.
pub fn is_core(s: &Structure) -> bool {
    core_of(s).core.universe() == s.universe()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::homomorphism::{homomorphism_exists, is_homomorphism};

    #[test]
    fn cliques_are_cores() {
        for k in 1..=4 {
            assert!(is_core(&generators::complete_graph(k)), "K{k} is a core");
        }
    }

    #[test]
    fn even_cycle_core_is_edge() {
        // C6 (undirected) retracts onto a single edge = K2.
        let c6 = generators::undirected_cycle(6);
        let res = core_of(&c6);
        assert_eq!(res.core.universe(), 2);
        let e = res.core.vocabulary().lookup("E").unwrap();
        assert_eq!(res.core.relation(e).len(), 2, "one symmetric edge");
    }

    #[test]
    fn odd_cycle_is_core() {
        let c5 = generators::undirected_cycle(5);
        assert!(is_core(&c5), "odd cycles are cores");
    }

    #[test]
    fn directed_path_core_is_single_edge() {
        // The directed path 0→1→2→3 retracts onto... nothing smaller than
        // itself? hom(P4 → P4 minus endpoint) fails since P4 needs a
        // 3-edge walk. Its core is itself.
        let p4 = generators::directed_path(4);
        assert!(is_core(&p4));
    }

    #[test]
    fn retraction_is_homomorphism_onto_core() {
        let c6 = generators::undirected_cycle(6);
        let res = core_of(&c6);
        // Check that x ↦ retraction[x] is a hom from c6 to the core.
        assert!(is_homomorphism(&res.retraction, &c6, &res.core));
        // Core embeds back (hom both ways = hom-equivalent).
        assert!(homomorphism_exists(&res.core, &c6));
        assert!(homomorphism_exists(&c6, &res.core));
    }

    #[test]
    fn retained_elements_consistent() {
        let c6 = generators::undirected_cycle(6);
        let res = core_of(&c6);
        let kept: Vec<_> = res.retained.iter().flatten().collect();
        assert_eq!(kept.len(), res.core.universe());
        // Retained elements map to distinct core elements.
        let mut seen: Vec<_> = kept.iter().map(|e| e.index()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), res.core.universe());
    }

    #[test]
    fn disjoint_triangle_and_hexagon_core() {
        // Triangle ⊎ C6: the hexagon folds onto an edge of the triangle,
        // so the core is the triangle (3 elements).
        let voc = generators::digraph_vocabulary();
        let mut b = crate::StructureBuilder::new(voc, 9);
        // Triangle on 0,1,2 (symmetric).
        for (x, y) in [(0, 1), (1, 2), (2, 0)] {
            b.add_fact("E", &[x, y]).unwrap();
            b.add_fact("E", &[y, x]).unwrap();
        }
        // Hexagon on 3..9 (symmetric).
        for i in 0..6u32 {
            let (x, y) = (3 + i, 3 + (i + 1) % 6);
            b.add_fact("E", &[x, y]).unwrap();
            b.add_fact("E", &[y, x]).unwrap();
        }
        let s = b.finish();
        let res = core_of(&s);
        assert_eq!(res.core.universe(), 3);
        assert!(is_core(&res.core));
    }

    #[test]
    fn core_is_idempotent() {
        let c6 = generators::undirected_cycle(6);
        let once = core_of(&c6);
        let twice = core_of(&once.core);
        assert_eq!(once.core.universe(), twice.core.universe());
    }
}

//! The `A + B` encoding of §4.2 of the paper.
//!
//! A pair of σ-structures `(A, B)` is encoded as a single structure over
//! the vocabulary `σ₁ + σ₂ = σ₁ ∪ σ₂ ∪ {D₁, D₂}`: the universe is the
//! disjoint union of the universes, `D₁`/`D₂` are unary markers of the
//! two parts, and each `R₁`/`R₂` is `R`'s interpretation on the
//! respective part. This lets queries on *pairs* of structures (such as
//! "does the Spoiler win the existential k-pebble game on A and B?",
//! Theorem 4.7) be treated as ordinary queries on single structures.

use crate::structure::{Element, Structure, StructureBuilder};
use crate::vocabulary::{RelId, Vocabulary};
use std::sync::Arc;

/// The vocabulary `σ₁ + σ₂` together with the symbol correspondence.
#[derive(Debug, Clone)]
pub struct SumVocabulary {
    /// The combined vocabulary.
    pub vocabulary: Arc<Vocabulary>,
    /// `copy1[r.index()]` is the `σ₁` copy of original symbol `r`.
    pub copy1: Vec<RelId>,
    /// `copy2[r.index()]` is the `σ₂` copy of original symbol `r`.
    pub copy2: Vec<RelId>,
    /// The unary marker for the first part.
    pub d1: RelId,
    /// The unary marker for the second part.
    pub d2: RelId,
}

/// Builds `σ₁ + σ₂` from a base vocabulary.
pub fn sum_vocabulary(base: &Vocabulary) -> SumVocabulary {
    let mut voc = Vocabulary::new();
    let mut copy1 = Vec::with_capacity(base.len());
    let mut copy2 = Vec::with_capacity(base.len());
    for (_, name, arity) in base.symbols() {
        copy1.push(voc.add(&format!("{name}_1"), arity).expect("fresh name"));
    }
    for (_, name, arity) in base.symbols() {
        copy2.push(voc.add(&format!("{name}_2"), arity).expect("fresh name"));
    }
    let d1 = voc.add("D_1", 1).expect("fresh name");
    let d2 = voc.add("D_2", 1).expect("fresh name");
    SumVocabulary {
        vocabulary: voc.into_shared(),
        copy1,
        copy2,
        d1,
        d2,
    }
}

/// Encodes the pair `(a, b)` as the single structure `a + b`.
///
/// Elements `0..a.universe()` are `a`'s universe; elements
/// `a.universe()..` are `b`'s, shifted.
///
/// # Panics
/// Panics if the structures are over different vocabularies.
pub fn structure_sum(a: &Structure, b: &Structure) -> (Structure, SumVocabulary) {
    assert!(
        a.same_vocabulary(b),
        "sum of structures over different vocabularies"
    );
    let sv = sum_vocabulary(a.vocabulary());
    let offset = a.universe() as u32;
    let mut builder =
        StructureBuilder::new(Arc::clone(&sv.vocabulary), a.universe() + b.universe());
    let mut buf: Vec<Element> = Vec::new();
    for r in a.vocabulary().iter() {
        for t in a.relation(r).iter() {
            builder.add_tuple(sv.copy1[r.index()], t).expect("in range");
        }
        for t in b.relation(r).iter() {
            buf.clear();
            buf.extend(t.iter().map(|e| Element(e.0 + offset)));
            builder
                .add_tuple(sv.copy2[r.index()], &buf)
                .expect("in range");
        }
    }
    for e in 0..a.universe() as u32 {
        builder.add_tuple(sv.d1, &[Element(e)]).expect("in range");
    }
    for e in 0..b.universe() as u32 {
        builder
            .add_tuple(sv.d2, &[Element(e + offset)])
            .expect("in range");
    }
    (builder.finish(), sv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn sum_has_disjoint_marked_parts() {
        let a = generators::directed_path(3);
        let b = generators::directed_cycle(4);
        let (s, sv) = structure_sum(&a, &b);
        assert_eq!(s.universe(), 7);
        assert_eq!(s.relation(sv.d1).len(), 3);
        assert_eq!(s.relation(sv.d2).len(), 4);
        // D1 and D2 partition the universe.
        let mut marked = [0u8; 7];
        for t in s.relation(sv.d1).iter() {
            marked[t[0].index()] += 1;
        }
        for t in s.relation(sv.d2).iter() {
            marked[t[0].index()] += 1;
        }
        assert!(marked.iter().all(|&m| m == 1));
    }

    #[test]
    fn relations_are_copied_with_offset() {
        let a = generators::directed_path(3); // edges (0,1),(1,2)
        let b = generators::directed_path(2); // edge (0,1) → (3,4)
        let (s, sv) = structure_sum(&a, &b);
        let e = a.vocabulary().lookup("E").unwrap();
        let e1 = sv.copy1[e.index()];
        let e2 = sv.copy2[e.index()];
        assert_eq!(s.relation(e1).len(), 2);
        assert_eq!(s.relation(e2).len(), 1);
        assert!(s.relation(e2).contains(&[Element(3), Element(4)]));
    }

    #[test]
    fn vocabulary_names() {
        let sv = sum_vocabulary(&generators::digraph_vocabulary());
        let v = &sv.vocabulary;
        assert!(v.lookup("E_1").is_some());
        assert!(v.lookup("E_2").is_some());
        assert!(v.lookup("D_1").is_some());
        assert_eq!(v.arity(sv.d1), 1);
        assert_eq!(v.arity(sv.copy2[0]), 2);
    }

    #[test]
    fn empty_structures_sum() {
        let voc = generators::digraph_vocabulary();
        let a = StructureBuilder::new(Arc::clone(&voc), 0).finish();
        let b = StructureBuilder::new(voc, 2).finish();
        let (s, sv) = structure_sum(&a, &b);
        assert_eq!(s.universe(), 2);
        assert_eq!(s.relation(sv.d1).len(), 0);
        assert_eq!(s.relation(sv.d2).len(), 2);
    }
}

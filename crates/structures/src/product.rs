//! Direct products of relational structures.
//!
//! `A × B` has universe `A × B` and `((a₁,b₁),…,(aₖ,bₖ)) ∈ R^{A×B}` iff
//! `(a₁,…,aₖ) ∈ R^A` and `(b₁,…,bₖ) ∈ R^B`. Its universal property —
//! `hom(C → A×B) ⟺ hom(C → A) ∧ hom(C → B)` — makes it a sharp
//! cross-validation tool for every solver in the workspace, and products
//! are the algebraic backbone of the CSP literature the paper engages
//! (closure under operations = polymorphisms).

use crate::structure::{Element, Structure, StructureBuilder};
use std::sync::Arc;

/// The index of the pair `(x, y)` in the product universe.
#[inline]
pub fn pair_index(x: Element, y: Element, b_universe: usize) -> Element {
    Element(x.0 * b_universe as u32 + y.0)
}

/// Splits a product element back into its two coordinates.
#[inline]
pub fn pair_split(e: Element, b_universe: usize) -> (Element, Element) {
    (
        Element(e.0 / b_universe as u32),
        Element(e.0 % b_universe as u32),
    )
}

/// Computes the direct product `A × B`.
///
/// The product has `|A| · |B|` elements and `|R^A| · |R^B|` tuples per
/// relation, so use it on small inputs.
///
/// # Panics
/// Panics if the structures are over different vocabularies.
pub fn direct_product(a: &Structure, b: &Structure) -> Structure {
    assert!(
        a.same_vocabulary(b),
        "product of structures over different vocabularies"
    );
    let voc = Arc::clone(a.vocabulary());
    let bu = b.universe();
    let mut builder = StructureBuilder::new(Arc::clone(&voc), a.universe() * bu);
    let mut buf: Vec<Element> = Vec::new();
    for r in voc.iter() {
        let ra = a.relation(r);
        let rb = b.relation(r);
        for ta in ra.iter() {
            for tb in rb.iter() {
                buf.clear();
                buf.extend(
                    ta.iter()
                        .zip(tb.iter())
                        .map(|(&x, &y)| pair_index(x, y, bu)),
                );
                builder
                    .add_tuple(r, &buf)
                    .expect("in range by construction");
            }
        }
    }
    builder.finish()
}

/// The two canonical projection homomorphisms out of `A × B`, as dense
/// maps (first component, second component).
pub fn projections(a: &Structure, b: &Structure) -> (Vec<Element>, Vec<Element>) {
    let bu = b.universe();
    let n = a.universe() * bu;
    let mut p1 = Vec::with_capacity(n);
    let mut p2 = Vec::with_capacity(n);
    for i in 0..n as u32 {
        let (x, y) = pair_split(Element(i), bu);
        p1.push(x);
        p2.push(y);
    }
    (p1, p2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::homomorphism::{homomorphism_exists, is_homomorphism};

    #[test]
    fn projections_are_homomorphisms() {
        let a = generators::directed_cycle(3);
        let b = generators::complete_graph(3);
        let p = direct_product(&a, &b);
        let (p1, p2) = projections(&a, &b);
        assert!(is_homomorphism(&p1, &p, &a));
        assert!(is_homomorphism(&p2, &p, &b));
    }

    #[test]
    fn universal_property() {
        // C5 → K3 (5-cycle is 3-colorable) and C5 → K4, so C5 → K3 × K4.
        let c5 = generators::undirected_cycle(5);
        let k3 = generators::complete_graph(3);
        let k4 = generators::complete_graph(4);
        let prod = direct_product(&k3, &k4);
        assert!(homomorphism_exists(&c5, &prod));
        // C5 ↛ K2, so C5 ↛ K2 × K4.
        let k2 = generators::complete_graph(2);
        let prod2 = direct_product(&k2, &k4);
        assert!(!homomorphism_exists(&c5, &prod2));
    }

    #[test]
    fn product_sizes() {
        let a = generators::directed_path(3); // 2 edges
        let b = generators::directed_path(4); // 3 edges
        let p = direct_product(&a, &b);
        assert_eq!(p.universe(), 12);
        let e = p.vocabulary().lookup("E").unwrap();
        assert_eq!(p.relation(e).len(), 6);
    }

    #[test]
    fn pair_index_roundtrip() {
        for x in 0..5u32 {
            for y in 0..7u32 {
                let e = pair_index(Element(x), Element(y), 7);
                assert_eq!(pair_split(e, 7), (Element(x), Element(y)));
            }
        }
    }
}

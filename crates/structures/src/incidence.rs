//! The incidence graph of a structure.
//!
//! The bipartite graph with the tuples of `A` on one side and the
//! elements of the universe on the other, with an edge from tuple `t` to
//! element `a` iff `a` occurs in `t` (paper §5, after Theorem 5.4). The
//! paper relates its treewidth ("incidence treewidth") to the Gaifman
//! treewidth: `incidence ≤ gaifman + 1` and
//! `gaifman ≤ (incidence + 1) · max_arity − 1`.

use crate::graph::UndirectedGraph;
use crate::structure::Structure;
use crate::vocabulary::RelId;

/// The incidence graph of a structure, with bookkeeping that identifies
/// which graph vertices are elements and which are tuples.
#[derive(Debug, Clone)]
pub struct IncidenceGraph {
    /// The underlying undirected bipartite graph. Vertices
    /// `0..num_elements` are universe elements; vertices
    /// `num_elements..` are tuple nodes.
    pub graph: UndirectedGraph,
    /// Number of element vertices (equals the structure's universe size).
    pub num_elements: usize,
    /// For each tuple node (offset by `num_elements`), its origin.
    pub tuple_origin: Vec<(RelId, u32)>,
}

impl IncidenceGraph {
    /// Number of tuple vertices.
    pub fn num_tuples(&self) -> usize {
        self.tuple_origin.len()
    }

    /// The graph vertex for the `i`-th tuple node.
    pub fn tuple_vertex(&self, i: usize) -> usize {
        self.num_elements + i
    }
}

/// Builds the incidence graph of `s`.
pub fn incidence_graph(s: &Structure) -> IncidenceGraph {
    let num_elements = s.universe();
    let mut tuple_origin = Vec::with_capacity(s.total_tuples());
    for r in s.vocabulary().iter() {
        for t in 0..s.relation(r).len() {
            tuple_origin.push((r, t as u32));
        }
    }
    let mut graph = UndirectedGraph::new(num_elements + tuple_origin.len());
    for (i, &(r, t)) in tuple_origin.iter().enumerate() {
        let tv = num_elements + i;
        for &e in s.relation(r).tuple(t as usize) {
            graph.add_edge(tv, e.index());
        }
    }
    IncidenceGraph {
        graph,
        num_elements,
        tuple_origin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::StructureBuilder;
    use crate::vocabulary::Vocabulary;

    #[test]
    fn single_wide_tuple_is_a_star() {
        // The paper's example: a single n-ary tuple has Gaifman graph K_n
        // but its incidence graph is a tree (a star), so incidence
        // treewidth 1.
        let voc = Vocabulary::from_symbols([("R", 5)]).unwrap().into_shared();
        let mut b = StructureBuilder::new(voc, 5);
        b.add_fact("R", &[0, 1, 2, 3, 4]).unwrap();
        let s = b.finish();
        let inc = incidence_graph(&s);
        assert_eq!(inc.num_elements, 5);
        assert_eq!(inc.num_tuples(), 1);
        assert_eq!(inc.graph.num_edges(), 5);
        assert_eq!(inc.graph.degree(inc.tuple_vertex(0)), 5);
    }

    #[test]
    fn bipartite_shape() {
        let s = crate::generators::directed_path(3);
        let inc = incidence_graph(&s);
        // No element-element or tuple-tuple edges.
        for u in 0..inc.num_elements {
            for v in 0..inc.num_elements {
                assert!(!inc.graph.has_edge(u, v));
            }
        }
        for i in 0..inc.num_tuples() {
            for j in 0..inc.num_tuples() {
                assert!(!inc.graph.has_edge(inc.tuple_vertex(i), inc.tuple_vertex(j)));
            }
        }
    }

    #[test]
    fn repeated_element_edge_counted_once() {
        let voc = Vocabulary::from_symbols([("R", 2)]).unwrap().into_shared();
        let mut b = StructureBuilder::new(voc, 1);
        b.add_fact("R", &[0, 0]).unwrap();
        let s = b.finish();
        let inc = incidence_graph(&s);
        assert_eq!(inc.graph.num_edges(), 1);
    }

    #[test]
    fn tuple_origin_bookkeeping() {
        let voc = Vocabulary::from_symbols([("E", 2), ("P", 1)])
            .unwrap()
            .into_shared();
        let mut b = StructureBuilder::new(std::sync::Arc::clone(&voc), 2);
        b.add_fact("E", &[0, 1]).unwrap();
        b.add_fact("P", &[1]).unwrap();
        let s = b.finish();
        let inc = incidence_graph(&s);
        assert_eq!(inc.num_tuples(), 2);
        let e = voc.lookup("E").unwrap();
        let p = voc.lookup("P").unwrap();
        assert_eq!(inc.tuple_origin[0], (e, 0));
        assert_eq!(inc.tuple_origin[1], (p, 0));
    }
}

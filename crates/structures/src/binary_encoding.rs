//! The dual-graph binary encoding of Lemma 5.5.
//!
//! `binary(A)` is a structure with **binary relations only**: its domain
//! is the set of tuples occurring in the relations of `A`, its vocabulary
//! has a symbol `E_{P,Q,i,j}` for each pair of relation symbols `P, Q`
//! and argument positions `i, j`, and `E_{P,Q,i,j}` contains the pair
//! `(s, t)` iff the `i`-th element of `s` equals the `j`-th element of
//! `t`. Lemma 5.5: `hom(A → B) ⟺ hom(binary(A) → binary(B))`.
//!
//! The paper also notes an *optimized* encoding for the left-hand
//! structure: it suffices to store enough coincidence pairs that their
//! reflexive-symmetric-transitive closure recovers all of them (this can
//! lower the treewidth of the encoding). [`binary_encode_optimized`]
//! implements the chain variant: consecutive occurrences of each element
//! are linked. It is sound **only on the left side** of a homomorphism
//! test whose right side uses the full encoding — see
//! `optimized_left_encoding_preserves_homomorphisms` in the tests.

use crate::structure::{Element, Structure, StructureBuilder};
use crate::vocabulary::{RelId, Vocabulary};
use std::sync::Arc;

/// The binary vocabulary derived from a base vocabulary, with the
/// `(P, Q, i, j) → RelId` correspondence.
#[derive(Debug, Clone)]
pub struct BinaryVocabulary {
    /// The derived vocabulary (all symbols binary).
    pub vocabulary: Arc<Vocabulary>,
    /// Flattened lookup; see [`BinaryVocabulary::symbol`].
    ids: Vec<RelId>,
    arities: Vec<usize>,
    offsets: Vec<usize>,
}

impl BinaryVocabulary {
    /// Derives the binary vocabulary of `base`. Deterministic: equal base
    /// vocabularies give equal derived vocabularies, so independently
    /// encoded structures remain compatible.
    pub fn new(base: &Vocabulary) -> Self {
        let arities: Vec<usize> = base.iter().map(|r| base.arity(r)).collect();
        let mut voc = Vocabulary::new();
        let mut ids = Vec::new();
        let mut offsets = Vec::with_capacity(base.len() * base.len());
        for (p, pname, parity) in base.symbols() {
            for (q, qname, qarity) in base.symbols() {
                offsets.push(ids.len());
                for i in 0..parity {
                    for j in 0..qarity {
                        let name = format!("E_{pname}_{qname}_{i}_{j}");
                        ids.push(voc.add(&name, 2).expect("fresh generated name"));
                    }
                }
                let _ = (p, q);
            }
        }
        BinaryVocabulary {
            vocabulary: voc.into_shared(),
            ids,
            arities,
            offsets,
        }
    }

    /// The symbol `E_{P,Q,i,j}`.
    pub fn symbol(&self, p: RelId, q: RelId, i: usize, j: usize) -> RelId {
        let nbase = self.arities.len();
        let block = self.offsets[p.index() * nbase + q.index()];
        self.ids[block + i * self.arities[q.index()] + j]
    }
}

/// A binary-encoded structure together with its tuple-node bookkeeping.
#[derive(Debug, Clone)]
pub struct BinaryEncoded {
    /// The encoded structure (all relations binary).
    pub structure: Structure,
    /// For each element of the encoded universe, the originating tuple.
    pub tuple_origin: Vec<(RelId, u32)>,
}

fn tuple_nodes(s: &Structure) -> Vec<(RelId, u32)> {
    let mut nodes = Vec::with_capacity(s.total_tuples());
    for r in s.vocabulary().iter() {
        for t in 0..s.relation(r).len() {
            nodes.push((r, t as u32));
        }
    }
    nodes
}

/// Occurrence list: for each universe element of `s`, the positions
/// `(tuple_node_index, position)` where it occurs.
fn occurrence_positions(s: &Structure, nodes: &[(RelId, u32)]) -> Vec<Vec<(usize, usize)>> {
    let mut occ: Vec<Vec<(usize, usize)>> = vec![Vec::new(); s.universe()];
    for (node, &(r, t)) in nodes.iter().enumerate() {
        for (pos, &e) in s.relation(r).tuple(t as usize).iter().enumerate() {
            occ[e.index()].push((node, pos));
        }
    }
    occ
}

/// The **full** binary encoding of Lemma 5.5: every coincidence pair is
/// stored (the encoding is reflexively-symmetrically-transitively
/// closed by construction).
pub fn binary_encode(s: &Structure) -> BinaryEncoded {
    let bv = BinaryVocabulary::new(s.vocabulary());
    let nodes = tuple_nodes(s);
    let occ = occurrence_positions(s, &nodes);
    let mut b = StructureBuilder::new(Arc::clone(&bv.vocabulary), nodes.len());
    for positions in &occ {
        for &(n1, i) in positions {
            for &(n2, j) in positions {
                let (p, _) = nodes[n1];
                let (q, _) = nodes[n2];
                b.add_tuple(
                    bv.symbol(p, q, i, j),
                    &[Element(n1 as u32), Element(n2 as u32)],
                )
                .expect("in range by construction");
            }
        }
    }
    BinaryEncoded {
        structure: b.finish(),
        tuple_origin: nodes,
    }
}

/// The **optimized** (chain) binary encoding: only consecutive
/// occurrences of each element are linked, plus the reflexive pair on the
/// first occurrence. The stored pairs' closure equals the full
/// coincidence relation, which by the paper's optimization note suffices
/// when this encoding is used as the *left* structure against a fully
/// encoded right structure.
pub fn binary_encode_optimized(s: &Structure) -> BinaryEncoded {
    let bv = BinaryVocabulary::new(s.vocabulary());
    let nodes = tuple_nodes(s);
    let occ = occurrence_positions(s, &nodes);
    let mut b = StructureBuilder::new(Arc::clone(&bv.vocabulary), nodes.len());
    for positions in &occ {
        for w in positions.windows(2) {
            let (n1, i) = w[0];
            let (n2, j) = w[1];
            let (p, _) = nodes[n1];
            let (q, _) = nodes[n2];
            b.add_tuple(
                bv.symbol(p, q, i, j),
                &[Element(n1 as u32), Element(n2 as u32)],
            )
            .expect("in range by construction");
        }
        if let Some(&(n1, i)) = positions.first() {
            let (p, _) = nodes[n1];
            b.add_tuple(
                bv.symbol(p, p, i, i),
                &[Element(n1 as u32), Element(n1 as u32)],
            )
            .expect("in range by construction");
        }
    }
    BinaryEncoded {
        structure: b.finish(),
        tuple_origin: nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::homomorphism::homomorphism_exists;

    /// Lemma 5.5 on deterministic families.
    #[test]
    fn full_encoding_preserves_homomorphism_both_ways() {
        let cases: Vec<(Structure, Structure, bool)> = vec![
            (
                generators::undirected_cycle(5),
                generators::complete_graph(3),
                true,
            ),
            (
                generators::undirected_cycle(5),
                generators::complete_graph(2),
                false,
            ),
            (
                generators::directed_path(4),
                generators::directed_cycle(3),
                true,
            ),
            (
                generators::directed_cycle(3),
                generators::directed_path(5),
                false,
            ),
        ];
        for (a, b, expected) in cases {
            assert_eq!(homomorphism_exists(&a, &b), expected);
            let ba = binary_encode(&a);
            let bb = binary_encode(&b);
            assert_eq!(
                homomorphism_exists(&ba.structure, &bb.structure),
                expected,
                "binary encoding must preserve hom existence"
            );
        }
    }

    #[test]
    fn full_encoding_on_random_structures() {
        for seed in 0..6 {
            let a = generators::random_structure(4, &[2, 3], 4, seed);
            let b = generators::random_structure_over(a.vocabulary(), 3, 6, seed + 100);
            let expected = homomorphism_exists(&a, &b);
            let ba = binary_encode(&a);
            let bb = binary_encode(&b);
            assert_eq!(
                homomorphism_exists(&ba.structure, &bb.structure),
                expected,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn optimized_left_encoding_preserves_homomorphisms() {
        for seed in 0..6 {
            let a = generators::random_structure(4, &[2, 2], 5, seed);
            let b = generators::random_structure_over(a.vocabulary(), 3, 6, seed + 50);
            let expected = homomorphism_exists(&a, &b);
            let ba = binary_encode_optimized(&a); // reduced left side
            let bb = binary_encode(&b); // full right side
            assert_eq!(
                homomorphism_exists(&ba.structure, &bb.structure),
                expected,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn optimized_encoding_is_smaller() {
        let a = generators::complete_graph(4);
        let full = binary_encode(&a);
        let opt = binary_encode_optimized(&a);
        assert!(opt.structure.total_tuples() < full.structure.total_tuples());
        assert_eq!(opt.structure.universe(), full.structure.universe());
    }

    #[test]
    fn encoded_universe_is_tuple_count() {
        let a = generators::directed_cycle(4);
        let enc = binary_encode(&a);
        assert_eq!(enc.structure.universe(), a.total_tuples());
        assert_eq!(enc.tuple_origin.len(), 4);
    }

    #[test]
    fn binary_vocabulary_symbols() {
        let base = Vocabulary::from_symbols([("P", 2), ("Q", 1)]).unwrap();
        let bv = BinaryVocabulary::new(&base);
        // 2·2 + 2·1 + 1·2 + 1·1 = 9 symbols.
        assert_eq!(bv.vocabulary.len(), 9);
        let p = base.lookup("P").unwrap();
        let q = base.lookup("Q").unwrap();
        let sym = bv.symbol(p, q, 1, 0);
        assert_eq!(bv.vocabulary.name(sym), "E_P_Q_1_0");
        assert_eq!(bv.vocabulary.arity(sym), 2);
    }
}

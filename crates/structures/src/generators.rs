//! Deterministic and random structure families.
//!
//! These are the workloads the paper's arguments range over: paths and
//! cliques (the non-uniformity examples of §2), cycles (2-colorability,
//! `CSP(C₄)` of §3.2), k-trees (the bounded-treewidth inputs of §5), and
//! random structures for stress and property tests. All random
//! generators take an explicit seed so every experiment is reproducible.

use crate::structure::{Element, Structure, StructureBuilder};
use crate::vocabulary::Vocabulary;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The one-symbol vocabulary `{E/2}` used by all (di)graph structures.
pub fn digraph_vocabulary() -> Arc<Vocabulary> {
    Vocabulary::from_symbols([("E", 2)])
        .expect("static vocabulary is valid")
        .into_shared()
}

fn graph_structure(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Structure {
    let voc = digraph_vocabulary();
    let e = voc.lookup("E").expect("E exists");
    let mut b = StructureBuilder::new(voc, n);
    for (x, y) in edges {
        b.add_tuple(e, &[Element(x), Element(y)])
            .expect("generated edge is in range");
    }
    b.finish()
}

/// The directed path `0 → 1 → ⋯ → n-1` on `n` vertices.
pub fn directed_path(n: usize) -> Structure {
    graph_structure(n, (0..n.saturating_sub(1) as u32).map(|i| (i, i + 1)))
}

/// The directed cycle `0 → 1 → ⋯ → n-1 → 0` (the paper's `C₄` for n=4).
pub fn directed_cycle(n: usize) -> Structure {
    assert!(n >= 1);
    graph_structure(n, (0..n as u32).map(|i| (i, (i + 1) % n as u32)))
}

/// The undirected path on `n` vertices (edges in both directions).
pub fn undirected_path(n: usize) -> Structure {
    graph_structure(
        n,
        (0..n.saturating_sub(1) as u32).flat_map(|i| [(i, i + 1), (i + 1, i)]),
    )
}

/// The undirected cycle on `n ≥ 3` vertices (edges in both directions).
pub fn undirected_cycle(n: usize) -> Structure {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    graph_structure(
        n,
        (0..n as u32).flat_map(move |i| {
            let j = (i + 1) % n as u32;
            [(i, j), (j, i)]
        }),
    )
}

/// The complete graph `K_k` as a symmetric loop-free binary relation.
/// `CSP(K_k)` is `k`-colorability (§1 of the paper).
pub fn complete_graph(k: usize) -> Structure {
    graph_structure(
        k,
        (0..k as u32)
            .flat_map(move |i| (0..k as u32).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j),
    )
}

/// The `rows × cols` grid graph (symmetric edges). Treewidth is
/// `min(rows, cols)`.
pub fn grid_graph(rows: usize, cols: usize) -> Structure {
    let idx = move |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
                edges.push((idx(r, c + 1), idx(r, c)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
                edges.push((idx(r + 1, c), idx(r, c)));
            }
        }
    }
    graph_structure(rows * cols, edges)
}

/// The Petersen graph (symmetric edges): outer 5-cycle `0..5`, inner
/// pentagram `5..10`, spokes `i — i+5`. A standard treewidth test case
/// (treewidth 4) that no greedy elimination order gets wrong by much.
pub fn petersen() -> Structure {
    let mut edges = Vec::new();
    for i in 0..5u32 {
        edges.push((i, (i + 1) % 5)); // outer cycle
        edges.push((i, i + 5)); // spoke
        edges.push((5 + i, 5 + (i + 2) % 5)); // inner pentagram
    }
    graph_structure(10, edges.into_iter().flat_map(|(u, v)| [(u, v), (v, u)]))
}

/// A random digraph on `n` vertices: each ordered pair `(i, j)`, `i ≠ j`,
/// is an edge independently with probability `p`.
pub fn random_digraph(n: usize, p: f64, seed: u64) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            if i != j && rng.gen_bool(p) {
                edges.push((i, j));
            }
        }
    }
    graph_structure(n, edges)
}

/// A random undirected graph with exactly `m` distinct edges (symmetric
/// representation).
pub fn random_graph_nm(n: usize, m: usize, seed: u64) -> Structure {
    let max_edges = n * n.saturating_sub(1) / 2;
    assert!(
        m <= max_edges,
        "requested {m} edges but only {max_edges} possible"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all: Vec<(u32, u32)> = (0..n as u32)
        .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
        .collect();
    all.shuffle(&mut rng);
    graph_structure(
        n,
        all.into_iter().take(m).flat_map(|(i, j)| [(i, j), (j, i)]),
    )
}

/// Edge list of a random `k`-tree on `n ≥ k+1` vertices.
///
/// Built the standard way: start from `K_{k+1}`, then each new vertex is
/// attached to a random existing `k`-clique. Every `k`-tree has treewidth
/// exactly `k` (for `n > k`).
pub fn ktree_edges(n: usize, k: usize, seed: u64) -> Vec<(usize, usize)> {
    assert!(n > k, "a k-tree needs at least k+1 vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    // Seed clique K_{k+1} and the initial set of k-cliques.
    let mut cliques: Vec<Vec<usize>> = Vec::new();
    for i in 0..=k {
        for j in (i + 1)..=k {
            edges.push((i, j));
        }
    }
    for omit in 0..=k {
        let clique: Vec<usize> = (0..=k).filter(|&v| v != omit).collect();
        cliques.push(clique);
    }
    for v in (k + 1)..n {
        let base = cliques[rng.gen_range(0..cliques.len())].clone();
        for &u in &base {
            edges.push((u, v));
        }
        // New k-cliques: v together with each (k-1)-subset of base.
        for omit in 0..base.len() {
            let mut clique: Vec<usize> = base
                .iter()
                .copied()
                .enumerate()
                .filter(|&(i, _)| i != omit)
                .map(|(_, u)| u)
                .collect();
            clique.push(v);
            cliques.push(clique);
        }
        if k == 0 {
            cliques.push(vec![v]);
        }
    }
    edges
}

/// A random *partial* `k`-tree (treewidth ≤ k) as a symmetric structure:
/// a random `k`-tree with each edge kept independently with probability
/// `keep`.
pub fn partial_ktree(n: usize, k: usize, keep: f64, seed: u64) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let edges = ktree_edges(n, k, seed);
    graph_structure(
        n,
        edges
            .into_iter()
            .filter(|_| rng.gen_bool(keep))
            .flat_map(|(u, v)| [(u as u32, v as u32), (v as u32, u as u32)]),
    )
}

/// A random structure over a fresh vocabulary `R0/a₀, …` with the given
/// arities: each relation receives `tuples_per_relation` uniformly random
/// tuples over a universe of size `n`.
pub fn random_structure(
    n: usize,
    arities: &[usize],
    tuples_per_relation: usize,
    seed: u64,
) -> Structure {
    let mut voc = Vocabulary::new();
    for (i, &a) in arities.iter().enumerate() {
        voc.add(&format!("R{i}"), a)
            .expect("fresh names cannot collide");
    }
    let voc = voc.into_shared();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = StructureBuilder::new(Arc::clone(&voc), n);
    let mut buf = Vec::new();
    for r in voc.iter() {
        let arity = voc.arity(r);
        for _ in 0..tuples_per_relation {
            buf.clear();
            buf.extend((0..arity).map(|_| Element(rng.gen_range(0..n as u32))));
            b.add_tuple(r, &buf).expect("generated tuple is in range");
        }
    }
    b.finish()
}

/// A random structure over a *given* vocabulary (used when two structures
/// must share symbols).
pub fn random_structure_over(
    voc: &Arc<Vocabulary>,
    n: usize,
    tuples_per_relation: usize,
    seed: u64,
) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = StructureBuilder::new(Arc::clone(voc), n);
    let mut buf = Vec::new();
    for r in voc.iter() {
        let arity = voc.arity(r);
        for _ in 0..tuples_per_relation {
            buf.clear();
            buf.extend((0..arity).map(|_| Element(rng.gen_range(0..n as u32))));
            b.add_tuple(r, &buf).expect("generated tuple is in range");
        }
    }
    b.finish()
}

/// The transitive tournament on `n` vertices: edges `i → j` for `i < j`.
/// Homomorphisms from a directed path `P_m` into it exist iff `m ≤ n`.
pub fn transitive_tournament(n: usize) -> Structure {
    graph_structure(
        n,
        (0..n as u32).flat_map(move |i| ((i + 1)..n as u32).map(move |j| (i, j))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homomorphism::homomorphism_exists;

    #[test]
    fn path_and_cycle_shapes() {
        let p = directed_path(5);
        let e = p.vocabulary().lookup("E").unwrap();
        assert_eq!(p.relation(e).len(), 4);
        let c = directed_cycle(4);
        let e = c.vocabulary().lookup("E").unwrap();
        assert_eq!(c.relation(e).len(), 4);
        let uc = undirected_cycle(4);
        let e = uc.vocabulary().lookup("E").unwrap();
        assert_eq!(uc.relation(e).len(), 8);
    }

    #[test]
    fn complete_graph_edge_count() {
        let k4 = complete_graph(4);
        let e = k4.vocabulary().lookup("E").unwrap();
        assert_eq!(k4.relation(e).len(), 12, "K4 symmetric: 2·C(4,2)");
        // No loops.
        for t in k4.relation(e).iter() {
            assert_ne!(t[0], t[1]);
        }
    }

    #[test]
    fn grid_structure() {
        let g = grid_graph(2, 3);
        assert_eq!(g.universe(), 6);
        let e = g.vocabulary().lookup("E").unwrap();
        assert_eq!(g.relation(e).len(), 2 * 7, "2x3 grid has 7 edges");
    }

    #[test]
    fn petersen_shape() {
        let p = petersen();
        assert_eq!(p.universe(), 10);
        let e = p.vocabulary().lookup("E").unwrap();
        assert_eq!(p.relation(e).len(), 30, "15 undirected edges, symmetric");
        // 3-regular.
        let g = crate::gaifman_graph(&p);
        for v in 0..10 {
            assert_eq!(g.degree(v), 3, "vertex {v}");
        }
    }

    #[test]
    fn random_generators_are_deterministic() {
        let a = random_digraph(10, 0.3, 42);
        let b = random_digraph(10, 0.3, 42);
        let e = a.vocabulary().lookup("E").unwrap();
        assert_eq!(
            a.relation(e).iter().collect::<Vec<_>>(),
            b.relation(e).iter().collect::<Vec<_>>()
        );
        let c = random_digraph(10, 0.3, 43);
        // Overwhelmingly likely to differ.
        assert_ne!(
            a.relation(e).iter().collect::<Vec<_>>(),
            c.relation(e).iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_graph_nm_counts() {
        let g = random_graph_nm(8, 5, 7);
        let e = g.vocabulary().lookup("E").unwrap();
        assert_eq!(g.relation(e).len(), 10, "5 undirected edges, symmetric");
    }

    #[test]
    fn ktree_edge_count() {
        // A k-tree on n vertices has k(k+1)/2 + (n-k-1)k edges.
        for (n, k) in [(6, 1), (8, 2), (10, 3)] {
            let edges = ktree_edges(n, k, 1);
            let expected = k * (k + 1) / 2 + (n - k - 1) * k;
            assert_eq!(edges.len(), expected, "n={n} k={k}");
        }
    }

    #[test]
    fn ktree_is_chordal_connected() {
        let g = crate::graph::UndirectedGraph::from_edges(9, &ktree_edges(9, 2, 3));
        assert_eq!(g.components().len(), 1);
    }

    #[test]
    fn partial_ktree_subset_of_ktree() {
        let full = partial_ktree(9, 2, 1.0, 3);
        let e = full.vocabulary().lookup("E").unwrap();
        assert_eq!(full.relation(e).len(), 2 * ktree_edges(9, 2, 3).len());
        let sparse = partial_ktree(9, 2, 0.5, 3);
        assert!(sparse.relation(e).len() <= full.relation(e).len());
    }

    #[test]
    fn transitive_tournament_path_property() {
        let t = transitive_tournament(4);
        assert!(homomorphism_exists(&directed_path(4), &t));
        assert!(!homomorphism_exists(&directed_path(5), &t));
    }

    #[test]
    fn random_structure_shape() {
        let s = random_structure(6, &[2, 3], 10, 11);
        assert_eq!(s.universe(), 6);
        assert_eq!(s.vocabulary().len(), 2);
        // At most 10 per relation (duplicates collapse).
        for r in s.vocabulary().iter() {
            assert!(s.relation(r).len() <= 10);
            assert!(!s.relation(r).is_empty());
        }
    }
}

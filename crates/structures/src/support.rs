//! Per-`(relation, position, value)` support indexes over a structure's
//! tuples.
//!
//! A [`SupportIndex`] over a target structure `B` answers, in O(1), the
//! question "which tuples of `R^B` have value `v` at position `p`?" —
//! as a [`BitSet`] over tuple ids, so that propagation engines can
//! compute the *live witnesses* of a constraint by bitwise union and
//! intersection instead of rescanning `R^B`. This is the same data as
//! [`Relation::tuples_with`](crate::Relation::tuples_with) in set form,
//! built once per solve next to the per-element `occurrences` lists the
//! paper's Theorem 3.4 preprocessing stage constructs.

use crate::bitset::BitSet;
use crate::structure::{Element, Structure};
use crate::vocabulary::RelId;

/// Bitset-valued inverted index: `(relation, position, value) → tuple
/// ids`.
#[derive(Debug, Clone)]
pub struct SupportIndex {
    /// `per_rel[r][p][v]` = ids of tuples `w ∈ R` with `w[p] = v`.
    per_rel: Vec<Vec<Vec<BitSet>>>,
    /// `|R|` per relation, the capacity of each tuple-id bitset.
    tuple_counts: Vec<usize>,
    /// `projections[r][p]` = values occurring at position `p` of `R` —
    /// the supported set a revision computes when every domain is still
    /// full, cached here so that case skips the union/intersection work.
    projections: Vec<Vec<BitSet>>,
    /// Universe size of the indexed structure (the capacity of each
    /// projection bitset).
    universe: usize,
}

std::thread_local! {
    /// Per-thread count of [`SupportIndex::build`] calls, so tests can
    /// pin "built exactly once per template" without interference from
    /// other tests running on sibling threads.
    static BUILDS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Number of [`SupportIndex::build`] calls performed **by the calling
/// thread** since it started. A diagnostic for caching layers: the
/// compiled-template tests assert the delta across a batch of solves is
/// exactly one, i.e. the lazy support/program caches never rebuild the
/// index for the same template.
pub fn support_builds_on_this_thread() -> usize {
    BUILDS.with(|c| c.get())
}

impl SupportIndex {
    /// Builds the index over every relation of `s`.
    pub fn build(s: &Structure) -> SupportIndex {
        BUILDS.with(|c| c.set(c.get() + 1));
        let universe = s.universe();
        let mut per_rel = Vec::with_capacity(s.vocabulary().len());
        let mut tuple_counts = Vec::with_capacity(s.vocabulary().len());
        let mut projections = Vec::with_capacity(s.vocabulary().len());
        for r in s.vocabulary().iter() {
            let rel = s.relation(r);
            let ntuples = rel.len();
            let mut positions = Vec::with_capacity(rel.arity());
            let mut projs = Vec::with_capacity(rel.arity());
            for p in 0..rel.arity() {
                let mut by_value = vec![BitSet::new(ntuples); universe];
                let mut proj = BitSet::new(universe);
                for (v, bits) in by_value.iter_mut().enumerate() {
                    for &t in rel.tuples_with(p, Element::new(v)) {
                        bits.insert(t as usize);
                    }
                    if !bits.is_empty() {
                        proj.insert(v);
                    }
                }
                positions.push(by_value);
                projs.push(proj);
            }
            per_rel.push(positions);
            tuple_counts.push(ntuples);
            projections.push(projs);
        }
        SupportIndex {
            per_rel,
            tuple_counts,
            projections,
            universe,
        }
    }

    /// Universe size of the structure this index was built over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Ids of tuples of relation `r` whose `pos`-th component is
    /// `value`, as a bitset over `0..tuple_count(r)`.
    #[inline]
    pub fn supports(&self, r: RelId, pos: usize, value: usize) -> &BitSet {
        &self.per_rel[r.index()][pos][value]
    }

    /// Number of tuples in relation `r` (the capacity of its support
    /// bitsets).
    #[inline]
    pub fn tuple_count(&self, r: RelId) -> usize {
        self.tuple_counts[r.index()]
    }

    /// Values occurring at position `pos` of relation `r`, as a bitset
    /// over the indexed structure's universe: exactly the supported set
    /// of a tuple whose every element still has a full domain.
    #[inline]
    pub fn projection(&self, r: RelId, pos: usize) -> &BitSet {
        &self.projections[r.index()][pos]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn index_agrees_with_tuples_with() {
        let s = generators::random_digraph(6, 0.4, 11);
        let idx = SupportIndex::build(&s);
        for r in s.vocabulary().iter() {
            let rel = s.relation(r);
            assert_eq!(idx.tuple_count(r), rel.len());
            for p in 0..rel.arity() {
                for v in 0..s.universe() {
                    let from_vec: Vec<usize> = rel
                        .tuples_with(p, Element::new(v))
                        .iter()
                        .map(|&t| t as usize)
                        .collect();
                    let from_bits: Vec<usize> = idx.supports(r, p, v).iter().collect();
                    assert_eq!(from_bits, from_vec, "relation {r:?} pos {p} value {v}");
                }
            }
        }
    }

    #[test]
    fn every_tuple_indexed_once_per_position() {
        let s = generators::random_structure(5, &[1, 2, 3], 7, 3);
        let idx = SupportIndex::build(&s);
        for r in s.vocabulary().iter() {
            let rel = s.relation(r);
            for p in 0..rel.arity() {
                let total: usize = (0..s.universe()).map(|v| idx.supports(r, p, v).len()).sum();
                assert_eq!(total, rel.len(), "partition of tuple ids by value");
            }
        }
    }

    #[test]
    fn projections_are_position_value_sets() {
        let s = generators::random_structure(5, &[1, 2, 3], 7, 9);
        let idx = SupportIndex::build(&s);
        for r in s.vocabulary().iter() {
            let rel = s.relation(r);
            for p in 0..rel.arity() {
                let expected: Vec<usize> = (0..s.universe())
                    .filter(|&v| rel.iter().any(|t| t[p] == Element::new(v)))
                    .collect();
                let got: Vec<usize> = idx.projection(r, p).iter().collect();
                assert_eq!(got, expected, "relation {r:?} pos {p}");
            }
        }
    }

    #[test]
    fn empty_relation_has_empty_supports() {
        let voc = generators::digraph_vocabulary();
        let s = crate::StructureBuilder::new(voc, 3).finish();
        let idx = SupportIndex::build(&s);
        let e = s.vocabulary().lookup("E").unwrap();
        assert_eq!(idx.tuple_count(e), 0);
        for p in 0..2 {
            for v in 0..3 {
                assert!(idx.supports(e, p, v).is_empty());
            }
        }
    }
}

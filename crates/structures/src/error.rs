//! Error type shared by the structures substrate.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while building or combining relational structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A relation symbol was declared twice with different arities.
    DuplicateSymbol {
        name: String,
        old_arity: usize,
        new_arity: usize,
    },
    /// A tuple's length does not match the arity of its relation symbol.
    ArityMismatch {
        relation: String,
        arity: usize,
        got: usize,
    },
    /// A tuple mentions an element outside the declared universe.
    ElementOutOfRange {
        relation: String,
        element: u32,
        universe: usize,
    },
    /// Two structures were combined but are not over the same vocabulary.
    VocabularyMismatch,
    /// A relation symbol id is not valid for this vocabulary.
    UnknownRelation { name: String },
    /// Generic invalid-argument error with a human-readable message.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateSymbol {
                name,
                old_arity,
                new_arity,
            } => write!(
                f,
                "relation symbol `{name}` declared with arity {new_arity} \
                 but previously had arity {old_arity}"
            ),
            Error::ArityMismatch {
                relation,
                arity,
                got,
            } => write!(
                f,
                "tuple of length {got} supplied for relation `{relation}` of arity {arity}"
            ),
            Error::ElementOutOfRange {
                relation,
                element,
                universe,
            } => write!(
                f,
                "element {element} in a tuple of `{relation}` is outside the \
                 universe of size {universe}"
            ),
            Error::VocabularyMismatch => {
                write!(f, "structures are not over the same vocabulary")
            }
            Error::UnknownRelation { name } => {
                write!(f, "unknown relation symbol `{name}`")
            }
            Error::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::ArityMismatch {
            relation: "E".into(),
            arity: 2,
            got: 3,
        };
        assert!(e.to_string().contains("arity 2"));
        assert!(e.to_string().contains('E'));
        let e = Error::ElementOutOfRange {
            relation: "E".into(),
            element: 9,
            universe: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = Error::DuplicateSymbol {
            name: "R".into(),
            old_arity: 1,
            new_arity: 2,
        };
        assert!(e.to_string().contains('R'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&Error::VocabularyMismatch);
    }
}

//! Booleanization (Lemma 3.5): reducing any CSP instance to a Boolean
//! one.
//!
//! Every element of the right structure `B` is encoded by a bit vector
//! of length `m = ⌈log₂ |B|⌉`; a `k`-ary relation becomes a `k·m`-ary
//! Boolean relation, and every element of the left structure `A` is
//! split into `m` copies. The blow-up is a `⌈log |B|⌉` factor, and
//! `hom(A → B) ⟺ hom(A_b → B_b)`.
//!
//! The encoding is parameterized by a **labeling** (element → code):
//! Example 3.8 of the paper shows the labeling choice matters for which
//! Schaefer classes the Booleanized template lands in (`C₄` is affine
//! under one labeling, affine *and* bijunctive under another).

use crate::error::{Error, Result};
use crate::relation::MAX_ARITY;
use cqcs_structures::{Element, Structure, StructureBuilder, Vocabulary};
use std::sync::Arc;

/// Bookkeeping for decoding Booleanized homomorphisms.
#[derive(Debug, Clone)]
pub struct BooleanizeInfo {
    /// Bits per element (`max(1, ⌈log₂ n⌉)`).
    pub bits: usize,
    /// Universe size of the original right structure.
    pub b_universe: usize,
    /// Universe size of the original left structure.
    pub a_universe: usize,
    /// The labeling used: `labels[e]` is the code of `B`-element `e`.
    pub labels: Vec<u64>,
}

impl BooleanizeInfo {
    /// Decodes a Boolean homomorphism `h_b : A_b → {0,1}` back to a map
    /// `A → B`. Elements of `A` whose decoded code matches no label
    /// (possible only for elements occurring in no tuple) map to 0.
    pub fn decode(&self, hb: &[Element]) -> Vec<Element> {
        assert_eq!(hb.len(), self.a_universe * self.bits);
        (0..self.a_universe)
            .map(|a| {
                let code =
                    (0..self.bits).fold(0u64, |c, i| c | ((hb[a * self.bits + i].0 as u64) << i));
                match self.labels.iter().position(|&l| l == code) {
                    Some(e) => Element::new(e),
                    None => Element(0),
                }
            })
            .collect()
    }
}

/// The identity labeling: element `e` gets code `e`.
pub fn identity_labels(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

fn bits_needed(n: usize) -> usize {
    if n <= 2 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// The template half of Lemma 3.5's encoding: everything that depends
/// only on `B` and the labeling — the Boolean template `B_b`, the bit
/// width, and the derived vocabulary. Computed once per template by
/// [`booleanize_template`] and reused across instances by
/// [`booleanize_instance`], so a caller streaming many left structures
/// against one `B` never re-encodes (or re-classifies) the right side.
#[derive(Debug, Clone)]
pub struct BooleanizedTemplate {
    /// `B_b`: the Boolean template over the derived vocabulary.
    pub template: Structure,
    /// Bits per element (`max(1, ⌈log₂ |B|⌉)`, or more if the labeling
    /// uses higher codes).
    pub bits: usize,
    /// The labeling used: `labels[e]` is the code of `B`-element `e`.
    pub labels: Vec<u64>,
    /// Universe size of the original right structure.
    pub b_universe: usize,
    /// The derived vocabulary (same names, arities scaled by `bits`).
    voc: Arc<Vocabulary>,
    /// The original `B`'s vocabulary, for instance-side validation.
    source_voc: Arc<Vocabulary>,
}

/// Booleanizes the instance `(a, b)` with the identity labeling.
/// Returns `(A_b, B_b, info)` with `hom(A→B) ⟺ hom(A_b→B_b)`.
pub fn booleanize(a: &Structure, b: &Structure) -> Result<(Structure, Structure, BooleanizeInfo)> {
    booleanize_with_labels(a, b, &identity_labels(b.universe()))
}

/// Booleanizes with an explicit labeling (distinct codes per element,
/// each below `2^bits`).
pub fn booleanize_with_labels(
    a: &Structure,
    b: &Structure,
    labels: &[u64],
) -> Result<(Structure, Structure, BooleanizeInfo)> {
    if !a.same_vocabulary(b) {
        return Err(Error::Invalid(
            "left and right structures are over different vocabularies".into(),
        ));
    }
    let t = booleanize_template(b, labels)?;
    let (ab, info) = booleanize_instance(a, &t)?;
    Ok((ab, t.template, info))
}

/// Encodes the template side of Lemma 3.5 — `B_b` over the derived
/// vocabulary — independently of any left structure.
pub fn booleanize_template(b: &Structure, labels: &[u64]) -> Result<BooleanizedTemplate> {
    if labels.len() != b.universe() {
        return Err(Error::Invalid(format!(
            "labeling covers {} elements but B has {}",
            labels.len(),
            b.universe()
        )));
    }
    if b.universe() == 0 {
        return Err(Error::Invalid(
            "cannot Booleanize an empty right universe".into(),
        ));
    }
    {
        let mut sorted = labels.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != labels.len() {
            return Err(Error::Invalid("labels must be distinct".into()));
        }
    }
    let m = bits_needed(b.universe()).max(
        labels
            .iter()
            .map(|&l| bits_needed((l + 1) as usize))
            .max()
            .unwrap_or(1),
    );

    // Derived vocabulary: same names, arities scaled by m.
    let mut voc = Vocabulary::new();
    for (_, name, arity) in b.vocabulary().symbols() {
        if arity * m > MAX_ARITY {
            return Err(Error::ArityTooLarge { arity: arity * m });
        }
        voc.add(name, arity * m)
            .expect("names unchanged, still distinct");
    }
    let voc = voc.into_shared();

    // B_b: universe {0, 1}; each B-tuple becomes the concatenation of
    // its elements' codes.
    let mut bb = StructureBuilder::new(Arc::clone(&voc), 2);
    let mut buf: Vec<Element> = Vec::new();
    for (r, name, _) in b.vocabulary().symbols() {
        let rb = voc.lookup(name).expect("copied symbol");
        for t in b.relation(r).iter() {
            buf.clear();
            for &e in t {
                let code = labels[e.index()];
                for i in 0..m {
                    buf.push(Element(((code >> i) & 1) as u32));
                }
            }
            bb.add_tuple(rb, &buf).expect("bits are 0/1");
        }
    }

    Ok(BooleanizedTemplate {
        template: bb.finish(),
        bits: m,
        labels: labels.to_vec(),
        b_universe: b.universe(),
        voc,
        source_voc: Arc::clone(b.vocabulary()),
    })
}

/// Encodes a left structure against a precomputed
/// [`BooleanizedTemplate`]: `a` must be over the template's original
/// vocabulary. Returns `A_b` and the decode bookkeeping, with
/// `hom(A→B) ⟺ hom(A_b→B_b)`.
pub fn booleanize_instance(
    a: &Structure,
    t: &BooleanizedTemplate,
) -> Result<(Structure, BooleanizeInfo)> {
    if **a.vocabulary() != *t.source_voc {
        return Err(Error::Invalid(
            "left and right structures are over different vocabularies".into(),
        ));
    }
    let m = t.bits;
    // A_b: every element a becomes m copies (a, 0..m).
    let mut ab = StructureBuilder::new(Arc::clone(&t.voc), a.universe() * m);
    let mut buf: Vec<Element> = Vec::new();
    for (r, name, _) in a.vocabulary().symbols() {
        let rb = t.voc.lookup(name).expect("copied symbol");
        for tu in a.relation(r).iter() {
            buf.clear();
            for &e in tu {
                for i in 0..m {
                    buf.push(Element((e.index() * m + i) as u32));
                }
            }
            ab.add_tuple(rb, &buf).expect("in range by construction");
        }
    }
    let info = BooleanizeInfo {
        bits: m,
        b_universe: t.b_universe,
        a_universe: a.universe(),
        labels: t.labels.clone(),
    };
    Ok((ab.finish(), info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::BooleanStructure;
    use crate::schaefer::{classify_structure, SchaeferClass};
    use cqcs_structures::generators;
    use cqcs_structures::homomorphism::{find_homomorphism, homomorphism_exists, is_homomorphism};

    #[test]
    fn bits_needed_values() {
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 1);
        assert_eq!(bits_needed(3), 2);
        assert_eq!(bits_needed(4), 2);
        assert_eq!(bits_needed(5), 3);
        assert_eq!(bits_needed(8), 3);
        assert_eq!(bits_needed(9), 4);
    }

    #[test]
    fn lemma_3_5_on_colorings() {
        // C5 → K3 yes, C5 → K2 no; both survive Booleanization.
        let c5 = generators::undirected_cycle(5);
        for (template, expected) in [
            (generators::complete_graph(3), true),
            (generators::complete_graph(2), false),
        ] {
            let (ab, bb, info) = booleanize(&c5, &template).unwrap();
            assert_eq!(homomorphism_exists(&ab, &bb), expected);
            if expected {
                let hb = find_homomorphism(&ab, &bb).unwrap();
                let decoded = info.decode(hb.as_slice());
                assert!(is_homomorphism(&decoded, &c5, &template));
            }
        }
    }

    #[test]
    fn lemma_3_5_on_random_instances() {
        for seed in 0..10u64 {
            let a = generators::random_structure(5, &[2, 3], 5, seed);
            let b = generators::random_structure_over(a.vocabulary(), 4, 8, seed + 77);
            let expected = homomorphism_exists(&a, &b);
            let (ab, bb, info) = booleanize(&a, &b).unwrap();
            assert_eq!(homomorphism_exists(&ab, &bb), expected, "seed {seed}");
            if expected {
                let hb = find_homomorphism(&ab, &bb).unwrap();
                let decoded = info.decode(hb.as_slice());
                assert!(is_homomorphism(&decoded, &a, &b), "seed {seed}");
            }
        }
    }

    #[test]
    fn blowup_is_logarithmic() {
        let a = generators::directed_cycle(8);
        let b = generators::random_digraph(9, 0.4, 3);
        let (ab, bb, info) = booleanize(&a, &b).unwrap();
        assert_eq!(info.bits, 4, "⌈log₂ 9⌉");
        assert_eq!(ab.universe(), 8 * 4);
        assert_eq!(bb.universe(), 2);
        // Size scales by exactly the bit factor.
        let e = a.vocabulary().lookup("E").unwrap();
        let eb = ab.vocabulary().lookup("E").unwrap();
        assert_eq!(ab.vocabulary().arity(eb), 2 * 4);
        assert_eq!(ab.relation(eb).len(), a.relation(e).len());
    }

    #[test]
    fn example_3_8_first_labeling_affine_only() {
        // C4 with a↦00, b↦01, c↦10, d↦11 (identity labeling): the
        // Booleanized template is affine but not Horn/dual-Horn/
        // bijunctive/0-valid/1-valid.
        let c4 = generators::directed_cycle(4);
        let (_, bb, _) = booleanize_with_labels(&c4, &c4, &[0b00, 0b01, 0b10, 0b11]).unwrap();
        let bs = BooleanStructure::from_structure(&bb).unwrap();
        let set = classify_structure(&bs);
        assert!(set.contains(SchaeferClass::Affine));
        assert!(!set.contains(SchaeferClass::Bijunctive));
        assert!(!set.contains(SchaeferClass::Horn));
        assert!(!set.contains(SchaeferClass::DualHorn));
        assert!(!set.contains(SchaeferClass::ZeroValid));
        assert!(!set.contains(SchaeferClass::OneValid));
    }

    #[test]
    fn example_3_8_second_labeling_also_bijunctive() {
        // a↦00, b↦10, c↦11, d↦01: affine AND bijunctive.
        let c4 = generators::directed_cycle(4);
        let (_, bb, _) = booleanize_with_labels(&c4, &c4, &[0b00, 0b10, 0b11, 0b01]).unwrap();
        let bs = BooleanStructure::from_structure(&bb).unwrap();
        let set = classify_structure(&bs);
        assert!(set.contains(SchaeferClass::Affine));
        assert!(set.contains(SchaeferClass::Bijunctive));
        assert!(!set.contains(SchaeferClass::Horn));
        assert!(!set.contains(SchaeferClass::DualHorn));
    }

    #[test]
    fn two_coloring_booleanizes_to_xor() {
        // Example 3.7: K2 Booleanizes to R = {(0,1), (1,0)} — both
        // bijunctive and affine.
        let k2 = generators::complete_graph(2);
        let (_, bb, info) = booleanize(&k2, &k2).unwrap();
        assert_eq!(info.bits, 1);
        let bs = BooleanStructure::from_structure(&bb).unwrap();
        let r = bs.relation("E").unwrap();
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![0b01, 0b10]);
        let set = classify_structure(&bs);
        assert!(set.contains(SchaeferClass::Bijunctive));
        assert!(set.contains(SchaeferClass::Affine));
    }

    #[test]
    fn split_encoding_matches_the_one_shot() {
        // Template-half + instance-half must reproduce booleanize
        // exactly — same structures, same decode bookkeeping.
        for seed in 0..8u64 {
            let a = generators::random_structure(5, &[2, 3], 5, seed);
            let b = generators::random_structure_over(a.vocabulary(), 4, 8, seed + 50);
            let (ab1, bb1, info1) = booleanize(&a, &b).unwrap();
            let t = booleanize_template(&b, &identity_labels(b.universe())).unwrap();
            let (ab2, info2) = booleanize_instance(&a, &t).unwrap();
            assert!(ab1.same_vocabulary(&ab2), "seed {seed}");
            assert_eq!(ab1.size(), ab2.size(), "seed {seed}");
            assert!(bb1.same_vocabulary(&t.template), "seed {seed}");
            assert_eq!(bb1.size(), t.template.size(), "seed {seed}");
            assert_eq!(info1.bits, info2.bits, "seed {seed}");
            assert_eq!(info1.labels, info2.labels, "seed {seed}");
            // One template encoding serves a second instance too.
            let a2 = generators::random_structure_over(a.vocabulary(), 6, 7, seed + 99);
            let (ab3, info3) = booleanize_instance(&a2, &t).unwrap();
            let expected = homomorphism_exists(&a2, &b);
            assert_eq!(
                homomorphism_exists(&ab3, &t.template),
                expected,
                "seed {seed}"
            );
            let _ = info3;
        }
    }

    #[test]
    fn instance_encoding_rejects_foreign_vocabularies() {
        let b = generators::complete_graph(3);
        let t = booleanize_template(&b, &identity_labels(3)).unwrap();
        let other = generators::random_structure(3, &[3], 2, 0);
        assert!(booleanize_instance(&other, &t).is_err());
    }

    #[test]
    fn validation_errors() {
        let a = generators::directed_path(2);
        let b = generators::directed_path(3);
        assert!(
            booleanize_with_labels(&a, &b, &[0, 1]).is_err(),
            "wrong label count"
        );
        assert!(
            booleanize_with_labels(&a, &b, &[0, 1, 1]).is_err(),
            "duplicate labels"
        );
        let other = generators::random_structure(2, &[3], 1, 0);
        assert!(booleanize(&other, &b).is_err(), "vocabulary mismatch");
    }

    #[test]
    fn singleton_universe() {
        // |B| = 1: one bit, code 0; hom exists iff reference agrees.
        let voc = generators::digraph_vocabulary();
        let mut bb = cqcs_structures::StructureBuilder::new(Arc::clone(&voc), 1);
        bb.add_fact("E", &[0, 0]).unwrap();
        let b = bb.finish();
        let a = generators::directed_cycle(3);
        let (ab, bbb, _) = booleanize(&a, &b).unwrap();
        assert!(homomorphism_exists(&a, &b));
        assert!(homomorphism_exists(&ab, &bbb));
    }
}

//! Linear-time 2-SAT via strongly connected components.
//!
//! The paper's Theorem 3.3 dispatches bijunctive instances to a
//! linear-time 2-SAT decision [LP97]. We implement the
//! Aspvall–Plass–Tarjan method: build the implication graph (each clause
//! `l₁ ∨ l₂` contributes `¬l₁ → l₂` and `¬l₂ → l₁`), compute SCCs with
//! an iterative Tarjan, and read a model off the reverse topological
//! order. (Theorem 3.4's *direct* bijunctive algorithm in
//! [`crate::direct`] instead emulates the phase-propagation algorithm
//! the paper describes; the two are cross-checked in tests.)

use crate::cnf::CnfFormula;
use crate::error::{Error, Result};

/// Node index of a literal: `2v` for `p_v`, `2v+1` for `¬p_v`.
#[inline]
fn node(var: u32, positive: bool) -> usize {
    (var as usize) * 2 + usize::from(!positive)
}

/// Solves a 2-CNF formula. Returns a model or `None` if unsatisfiable.
/// Errors if some clause has more than two literals.
pub fn solve_2sat(f: &CnfFormula) -> Result<Option<Vec<bool>>> {
    if !f.is_2cnf() {
        return Err(Error::WrongFormulaShape("2-CNF"));
    }
    let n = f.num_vars;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); 2 * n];
    for clause in &f.clauses {
        match clause.literals.as_slice() {
            [] => return Ok(None),
            [l] => {
                // (l) ≡ (¬l → l).
                adj[node(l.var, !l.positive)].push(node(l.var, l.positive) as u32);
            }
            [l1, l2] => {
                adj[node(l1.var, !l1.positive)].push(node(l2.var, l2.positive) as u32);
                adj[node(l2.var, !l2.positive)].push(node(l1.var, l1.positive) as u32);
            }
            _ => unreachable!("is_2cnf checked"),
        }
    }
    let comp = tarjan_scc(&adj);
    let mut model = vec![false; n];
    for v in 0..n {
        let cp = comp[node(v as u32, true)];
        let cn = comp[node(v as u32, false)];
        if cp == cn {
            return Ok(None);
        }
        // Tarjan assigns component ids in reverse topological order:
        // a lower id means later in topological order. Set v true iff
        // p_v's component comes after ¬p_v's.
        model[v] = cp < cn;
    }
    debug_assert!(f.eval(&model));
    Ok(Some(model))
}

/// Iterative Tarjan SCC; returns the component id of every node.
/// Component ids are in reverse topological order (sinks get id 0-ish
/// first).
fn tarjan_scc(adj: &[Vec<u32>]) -> Vec<u32> {
    let n = adj.len();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut comp = vec![UNSET; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;
    // Explicit DFS stack: (node, edge cursor).
    let mut dfs: Vec<(u32, usize)> = Vec::new();

    for start in 0..n as u32 {
        if index[start as usize] != UNSET {
            continue;
        }
        dfs.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut cursor)) = dfs.last_mut() {
            if *cursor < adj[v as usize].len() {
                let w = adj[v as usize][*cursor];
                *cursor += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    dfs.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("root is on the stack");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, CnfFormula, Literal};

    fn cl2(l1: (u32, bool), l2: (u32, bool)) -> Clause {
        Clause::new(vec![
            Literal {
                var: l1.0,
                positive: l1.1,
            },
            Literal {
                var: l2.0,
                positive: l2.1,
            },
        ])
    }

    #[test]
    fn satisfiable_chain() {
        // (p0 ∨ p1) ∧ (¬p0 ∨ p1): p1 must be true.
        let f = CnfFormula::new(
            2,
            vec![cl2((0, true), (1, true)), cl2((0, false), (1, true))],
        );
        let m = solve_2sat(&f).unwrap().unwrap();
        assert!(f.eval(&m));
        assert!(m[1]);
    }

    #[test]
    fn unsatisfiable_square() {
        // (p0∨p1)(p0∨¬p1)(¬p0∨p1)(¬p0∨¬p1) is UNSAT.
        let f = CnfFormula::new(
            2,
            vec![
                cl2((0, true), (1, true)),
                cl2((0, true), (1, false)),
                cl2((0, false), (1, true)),
                cl2((0, false), (1, false)),
            ],
        );
        assert_eq!(solve_2sat(&f).unwrap(), None);
    }

    #[test]
    fn unit_clauses() {
        let f = CnfFormula::new(
            2,
            vec![
                Clause::new(vec![Literal::pos(0)]),
                cl2((0, false), (1, false)),
            ],
        );
        let m = solve_2sat(&f).unwrap().unwrap();
        assert_eq!(m, vec![true, false]);
    }

    #[test]
    fn contradictory_units() {
        let f = CnfFormula::new(
            1,
            vec![
                Clause::new(vec![Literal::pos(0)]),
                Clause::new(vec![Literal::neg(0)]),
            ],
        );
        assert_eq!(solve_2sat(&f).unwrap(), None);
    }

    #[test]
    fn empty_clause_unsat() {
        let f = CnfFormula::new(1, vec![Clause::default()]);
        assert_eq!(solve_2sat(&f).unwrap(), None);
    }

    #[test]
    fn rejects_wide_clauses() {
        let f = CnfFormula::new(
            3,
            vec![Clause::new(vec![
                Literal::pos(0),
                Literal::pos(1),
                Literal::pos(2),
            ])],
        );
        assert!(matches!(
            solve_2sat(&f).unwrap_err(),
            Error::WrongFormulaShape("2-CNF")
        ));
    }

    #[test]
    fn agrees_with_exhaustive_search() {
        let mut x = 0xDEADBEEFu64;
        for round in 0..80 {
            let nv = 5usize;
            let mut clauses = Vec::new();
            for _ in 0..7 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let v1 = ((x >> 3) % 5) as u32;
                let v2 = ((x >> 17) % 5) as u32;
                clauses.push(cl2((v1, x & 1 != 0), (v2, x & 2 != 0)));
            }
            let f = CnfFormula::new(nv, clauses);
            let brute_sat = !f.models().is_empty();
            match solve_2sat(&f).unwrap() {
                Some(m) => {
                    assert!(f.eval(&m), "round {round}: returned non-model");
                    assert!(brute_sat);
                }
                None => assert!(!brute_sat, "round {round}: solver missed a model"),
            }
        }
    }
}

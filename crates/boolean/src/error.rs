//! Error type for the Boolean subsystem.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by Boolean-CSP operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Relation arity exceeds the bit-packed representation limit (63).
    ArityTooLarge { arity: usize },
    /// A tuple mask has bits set beyond the relation's arity.
    TupleOutOfRange { mask: u64, arity: usize },
    /// A structure expected to be Boolean has a non-`{0,1}` universe.
    NotBoolean { universe: usize },
    /// The structure is not in Schaefer's tractable class.
    NotSchaefer,
    /// A formula violated a syntactic expectation (e.g. not Horn).
    WrongFormulaShape(&'static str),
    /// Generic invalid-argument error.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ArityTooLarge { arity } => {
                write!(
                    f,
                    "Boolean relation arity {arity} exceeds the supported maximum of 63"
                )
            }
            Error::TupleOutOfRange { mask, arity } => {
                write!(f, "tuple mask {mask:#b} has bits beyond arity {arity}")
            }
            Error::NotBoolean { universe } => {
                write!(
                    f,
                    "expected a Boolean structure (universe 2), got universe {universe}"
                )
            }
            Error::NotSchaefer => write!(f, "structure is not in Schaefer's class"),
            Error::WrongFormulaShape(what) => write!(f, "formula is not {what}"),
            Error::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(Error::ArityTooLarge { arity: 99 }
            .to_string()
            .contains("99"));
        assert!(Error::NotBoolean { universe: 5 }.to_string().contains('5'));
        assert!(Error::WrongFormulaShape("Horn")
            .to_string()
            .contains("Horn"));
    }
}

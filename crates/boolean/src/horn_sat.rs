//! Linear-time Horn satisfiability (Dowling–Gallier / Beeri–Bernstein).
//!
//! The paper's Theorem 3.3 notes that satisfiability of the instantiated
//! Horn formula φ_A "can be checked in time that is linear in the length
//! of φ_A" [BB79, DG84]. This is the classic counter-based unit
//! propagation: each clause keeps a count of premise variables not yet
//! known true; when it reaches zero the head is forced.

use crate::cnf::CnfFormula;
use crate::error::{Error, Result};

/// Solves a Horn CNF. Returns the **minimal model** (the unique
/// pointwise-least satisfying assignment) or `None` if unsatisfiable.
///
/// Errors if the formula is not Horn.
pub fn solve_horn(f: &CnfFormula) -> Result<Option<Vec<bool>>> {
    if !f.is_horn() {
        return Err(Error::WrongFormulaShape("Horn"));
    }
    let n = f.num_vars;
    let mut truth = vec![false; n];
    // Per clause: remaining untrue premise count and the head (if any).
    let mut remaining: Vec<usize> = Vec::with_capacity(f.clauses.len());
    let mut head: Vec<Option<u32>> = Vec::with_capacity(f.clauses.len());
    // watch[v] = clauses having ¬v as a premise literal.
    let mut watch: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut queue: Vec<u32> = Vec::new();

    for (ci, clause) in f.clauses.iter().enumerate() {
        let mut premises = 0usize;
        let mut h: Option<u32> = None;
        for lit in &clause.literals {
            if lit.positive {
                debug_assert!(h.is_none(), "Horn: at most one positive literal");
                h = Some(lit.var);
            } else {
                premises += 1;
                watch[lit.var as usize].push(ci as u32);
            }
        }
        remaining.push(premises);
        head.push(h);
        if premises == 0 {
            match h {
                None => return Ok(None), // empty clause
                Some(v) => {
                    if !truth[v as usize] {
                        truth[v as usize] = true;
                        queue.push(v);
                    }
                }
            }
        }
    }

    while let Some(v) = queue.pop() {
        // `watch` lists are built once and each entry is visited at most
        // once because a variable enters the queue at most once.
        for &watched in &watch[v as usize] {
            let ci = watched as usize;
            // A premise may repeat ¬v; each occurrence decrements.
            remaining[ci] -= 1;
            if remaining[ci] == 0 {
                match head[ci] {
                    None => return Ok(None), // all-negative clause falsified
                    Some(h) => {
                        if !truth[h as usize] {
                            truth[h as usize] = true;
                            queue.push(h);
                        }
                    }
                }
            }
        }
    }
    Ok(Some(truth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Literal};

    fn clause(neg: &[u32], pos: Option<u32>) -> Clause {
        let mut lits: Vec<Literal> = neg.iter().map(|&v| Literal::neg(v)).collect();
        if let Some(p) = pos {
            lits.push(Literal::pos(p));
        }
        Clause::new(lits)
    }

    #[test]
    fn simple_propagation() {
        // p0; p0→p1; p1∧p0→p2.
        let f = CnfFormula::new(
            3,
            vec![
                clause(&[], Some(0)),
                clause(&[0], Some(1)),
                clause(&[1, 0], Some(2)),
            ],
        );
        let model = solve_horn(&f).unwrap().unwrap();
        assert_eq!(model, vec![true, true, true]);
        assert!(f.eval(&model));
    }

    #[test]
    fn minimal_model_is_least() {
        // p0→p1 alone: minimal model is all-false.
        let f = CnfFormula::new(2, vec![clause(&[0], Some(1))]);
        let model = solve_horn(&f).unwrap().unwrap();
        assert_eq!(model, vec![false, false]);
    }

    #[test]
    fn unsatisfiable_chain() {
        // p0; p0→p1; ¬p0∨¬p1.
        let f = CnfFormula::new(
            2,
            vec![
                clause(&[], Some(0)),
                clause(&[0], Some(1)),
                clause(&[0, 1], None),
            ],
        );
        assert_eq!(solve_horn(&f).unwrap(), None);
    }

    #[test]
    fn empty_clause_unsat() {
        let f = CnfFormula::new(1, vec![Clause::default()]);
        assert_eq!(solve_horn(&f).unwrap(), None);
    }

    #[test]
    fn repeated_premise_literal() {
        // (¬p0 ∨ ¬p0 ∨ p1) ∧ p0: must force p1, not get stuck.
        let f = CnfFormula::new(2, vec![clause(&[0, 0], Some(1)), clause(&[], Some(0))]);
        let model = solve_horn(&f).unwrap().unwrap();
        assert_eq!(model, vec![true, true]);
    }

    #[test]
    fn rejects_non_horn() {
        let f = CnfFormula::new(2, vec![Clause::new(vec![Literal::pos(0), Literal::pos(1)])]);
        assert!(matches!(
            solve_horn(&f).unwrap_err(),
            Error::WrongFormulaShape("Horn")
        ));
    }

    #[test]
    fn agrees_with_exhaustive_search() {
        // Random small Horn formulas: satisfiable iff some assignment
        // works; minimal model is pointwise ≤ every model.
        let mut x = 0x12345678u64;
        for _ in 0..60 {
            let nv = 5usize;
            let mut clauses = Vec::new();
            for _ in 0..6 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let nneg = (x % 3) as usize;
                let neg: Vec<u32> = (0..nneg).map(|i| ((x >> (8 * i)) % 5) as u32).collect();
                let pos = if x & (1 << 40) != 0 {
                    Some(((x >> 41) % 5) as u32)
                } else {
                    None
                };
                clauses.push(clause(&neg, pos));
            }
            let f = CnfFormula::new(nv, clauses);
            let models = f.models();
            match solve_horn(&f).unwrap() {
                None => assert!(models.is_empty(), "solver said UNSAT but models exist"),
                Some(m) => {
                    assert!(f.eval(&m));
                    for other in &models {
                        for v in 0..nv {
                            assert!(!m[v] || other[v], "minimal model must be pointwise least");
                        }
                    }
                }
            }
        }
    }
}

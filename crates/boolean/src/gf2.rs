//! Linear algebra over GF(2).
//!
//! Affine relations are solution sets of linear systems over the
//! two-element field (paper §3, footnote 4). Theorem 3.2 constructs the
//! defining equations of an affine relation as a basis of the nullspace
//! of its tuple matrix; Theorem 3.3's affine route solves the
//! instantiated system by Gaussian elimination. Rows are [`BitSet`]s so
//! systems over arbitrarily many variables (the elements of the left
//! structure) are supported.

use cqcs_structures::BitSet;

/// One linear equation: `Σ_{i ∈ vars} x_i = rhs` over GF(2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Equation {
    /// The variables with coefficient 1.
    pub vars: BitSet,
    /// The right-hand side.
    pub rhs: bool,
}

impl Equation {
    /// Evaluates the equation under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        let parity = self.vars.iter().fold(false, |acc, v| acc ^ assignment[v]);
        parity == self.rhs
    }

    fn xor_with(&mut self, other: &Equation) {
        // GF(2) addition of rows: symmetric difference of supports.
        let mut sym = other.vars.clone();
        let mut both = self.vars.clone();
        both.intersect_with(&other.vars);
        sym.difference_with(&both);
        self.vars.difference_with(&both);
        self.vars.union_with(&sym);
        self.rhs ^= other.rhs;
    }
}

/// A system of linear equations over GF(2) in `num_vars` variables.
#[derive(Debug, Clone, Default)]
pub struct LinearSystem {
    /// Number of variables.
    pub num_vars: usize,
    /// The equations (conjunction).
    pub equations: Vec<Equation>,
}

impl LinearSystem {
    /// Creates an empty (trivially satisfiable) system.
    pub fn new(num_vars: usize) -> Self {
        LinearSystem {
            num_vars,
            equations: Vec::new(),
        }
    }

    /// Adds the equation `Σ_{i ∈ vars} x_i = rhs`.
    pub fn add_equation(&mut self, vars: impl IntoIterator<Item = usize>, rhs: bool) {
        let mut set = BitSet::new(self.num_vars);
        for v in vars {
            assert!(v < self.num_vars, "variable out of range");
            set.insert(v);
        }
        self.equations.push(Equation { vars: set, rhs });
    }

    /// Evaluates the whole system under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.equations.iter().all(|e| e.eval(assignment))
    }

    /// Solves by Gaussian elimination. Returns one solution (free
    /// variables set to `false`) or `None` if inconsistent.
    pub fn solve(&self) -> Option<Vec<bool>> {
        let mut rows: Vec<Equation> = self.equations.clone();
        let mut pivot_of_row: Vec<usize> = Vec::new();
        let mut used = 0usize;
        for col in 0..self.num_vars {
            // Find a row at or below `used` with a leading 1 in `col`.
            let Some(r) = (used..rows.len()).find(|&r| rows[r].vars.contains(col)) else {
                continue;
            };
            rows.swap(used, r);
            let pivot_row = rows[used].clone();
            for (i, row) in rows.iter_mut().enumerate() {
                if i != used && row.vars.contains(col) {
                    row.xor_with(&pivot_row);
                }
            }
            pivot_of_row.push(col);
            used += 1;
        }
        // Inconsistency: 0 = 1 rows.
        if rows[used..]
            .iter()
            .any(|row| row.vars.is_empty() && row.rhs)
        {
            return None;
        }
        let mut solution = vec![false; self.num_vars];
        for (r, &col) in pivot_of_row.iter().enumerate() {
            // After full elimination each pivot row reads
            // x_col + Σ free = rhs; with free vars = 0, x_col = rhs.
            solution[col] = rows[r].rhs;
        }
        Some(solution)
    }

    /// Number of solutions as `2^(num_vars − rank)`, or 0 if
    /// inconsistent. Returns `None` on overflow.
    pub fn count_solutions(&self) -> Option<u128> {
        let mut rows = self.equations.clone();
        let mut used = 0usize;
        for col in 0..self.num_vars {
            let Some(r) = (used..rows.len()).find(|&r| rows[r].vars.contains(col)) else {
                continue;
            };
            rows.swap(used, r);
            let pivot_row = rows[used].clone();
            for (i, row) in rows.iter_mut().enumerate() {
                if i != used && row.vars.contains(col) {
                    row.xor_with(&pivot_row);
                }
            }
            used += 1;
        }
        if rows[used..]
            .iter()
            .any(|row| row.vars.is_empty() && row.rhs)
        {
            return Some(0);
        }
        let free = self.num_vars - used;
        if free >= 128 {
            return None;
        }
        Some(1u128 << free)
    }
}

/// Computes a basis of the nullspace `{x : M·x = 0}` of a matrix given
/// by its rows (each row a [`BitSet`] of width `num_cols`).
///
/// This is the core of Theorem 3.2's affine formula construction: the
/// rows are the (extended) tuples of the relation, and each basis vector
/// is one linear equation every tuple satisfies.
pub fn nullspace_basis(rows: &[BitSet], num_cols: usize) -> Vec<BitSet> {
    // Row-reduce a copy of the matrix.
    let mut mat: Vec<BitSet> = rows.to_vec();
    let mut pivots: Vec<usize> = Vec::new();
    let mut used = 0usize;
    for col in 0..num_cols {
        let Some(r) = (used..mat.len()).find(|&r| mat[r].contains(col)) else {
            continue;
        };
        mat.swap(used, r);
        let pivot_row = mat[used].clone();
        for (i, row) in mat.iter_mut().enumerate() {
            if i != used && row.contains(col) {
                // XOR rows.
                let mut sym = pivot_row.clone();
                let mut both = row.clone();
                both.intersect_with(&pivot_row);
                sym.difference_with(&both);
                row.difference_with(&both);
                row.union_with(&sym);
            }
        }
        pivots.push(col);
        used += 1;
    }
    // One basis vector per free column.
    let pivot_set: BitSet = {
        let mut s = BitSet::new(num_cols);
        for &p in &pivots {
            s.insert(p);
        }
        s
    };
    let mut basis = Vec::new();
    for free in 0..num_cols {
        if pivot_set.contains(free) {
            continue;
        }
        let mut v = BitSet::new(num_cols);
        v.insert(free);
        // x_pivot = coefficient of `free` in that pivot's reduced row.
        for (r, &p) in pivots.iter().enumerate() {
            if mat[r].contains(free) {
                v.insert(p);
            }
        }
        basis.push(v);
    }
    basis
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(vals: &[usize], width: usize) -> BitSet {
        let mut s = BitSet::new(width);
        for &v in vals {
            s.insert(v);
        }
        s
    }

    #[test]
    fn solve_simple_system() {
        // x0 ⊕ x1 = 1, x1 = 1 → x0 = 0, x1 = 1.
        let mut sys = LinearSystem::new(2);
        sys.add_equation([0, 1], true);
        sys.add_equation([1], true);
        let sol = sys.solve().unwrap();
        assert_eq!(sol, vec![false, true]);
        assert!(sys.eval(&sol));
    }

    #[test]
    fn inconsistent_system() {
        // x0 = 0 and x0 = 1.
        let mut sys = LinearSystem::new(1);
        sys.add_equation([0], false);
        sys.add_equation([0], true);
        assert!(sys.solve().is_none());
        assert_eq!(sys.count_solutions(), Some(0));
    }

    #[test]
    fn zero_equals_one_is_inconsistent() {
        let mut sys = LinearSystem::new(3);
        sys.add_equation([], true);
        assert!(sys.solve().is_none());
    }

    #[test]
    fn underdetermined_system() {
        // x0 ⊕ x1 ⊕ x2 = 1 over 3 vars: 4 solutions.
        let mut sys = LinearSystem::new(3);
        sys.add_equation([0, 1, 2], true);
        assert_eq!(sys.count_solutions(), Some(4));
        let sol = sys.solve().unwrap();
        assert!(sys.eval(&sol));
    }

    #[test]
    fn solutions_verified_exhaustively() {
        // Random-ish 4-var system; check solve() result satisfies and
        // count matches exhaustive enumeration.
        let mut sys = LinearSystem::new(4);
        sys.add_equation([0, 2], true);
        sys.add_equation([1, 2, 3], false);
        sys.add_equation([0, 1], true);
        let mut count = 0u128;
        for bits in 0..16u32 {
            let a: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            if sys.eval(&a) {
                count += 1;
            }
        }
        assert_eq!(sys.count_solutions(), Some(count));
        let sol = sys.solve().unwrap();
        assert!(sys.eval(&sol));
    }

    #[test]
    fn nullspace_of_identity_is_empty() {
        let rows = vec![bits(&[0], 2), bits(&[1], 2)];
        assert!(nullspace_basis(&rows, 2).is_empty());
    }

    #[test]
    fn nullspace_of_zero_matrix_is_full() {
        let rows: Vec<BitSet> = vec![];
        let basis = nullspace_basis(&rows, 3);
        assert_eq!(basis.len(), 3);
    }

    #[test]
    fn nullspace_vectors_annihilate_rows() {
        let rows = vec![bits(&[0, 1, 2], 4), bits(&[1, 3], 4), bits(&[0, 2, 3], 4)];
        let basis = nullspace_basis(&rows, 4);
        for v in &basis {
            for row in &rows {
                let mut inter = v.clone();
                inter.intersect_with(row);
                assert_eq!(inter.len() % 2, 0, "v·row must be 0 over GF(2)");
            }
        }
        // r3 = r1 ⊕ r2, so rank 2 and nullity 4 − 2 = 2.
        assert_eq!(basis.len(), 2);
    }

    #[test]
    fn nullspace_dimension_theorem() {
        // Dependent rows: r3 = r1 ⊕ r2 → rank 2, nullity = 4 − 2 = 2.
        let r1 = bits(&[0, 1], 4);
        let r2 = bits(&[1, 2], 4);
        let r3 = bits(&[0, 2], 4);
        let basis = nullspace_basis(&[r1, r2, r3], 4);
        assert_eq!(basis.len(), 2);
    }
}

//! Defining formulas δ_R for nontrivial Schaefer relations
//! (Theorem 3.2).
//!
//! * **Bijunctive** — the paper's construction verbatim: δ_R is the
//!   conjunction of *all* 2-clauses over `p₁,…,p_k` satisfied by `R`;
//!   time `O(|R| · k²)`.
//! * **Affine** — the paper's construction verbatim: extend each tuple
//!   with a constant-1 column, compute a basis of the nullspace of the
//!   resulting matrix over GF(2) by Gaussian elimination; each basis
//!   vector is one linear equation.
//! * **Horn / dual Horn** — the paper cites Dechter–Pearl [DP92] for a
//!   polynomial-time construction. We implement an *exact* variant that
//!   enumerates non-models and emits one Horn implicate per refutation,
//!   with subsumption pruning; it is exponential in the **arity** `k`
//!   (not in `|R|`), which is a small constant for CSP templates, and is
//!   guarded by an arity limit. The workspace's production solving route
//!   is Theorem 3.4's direct algorithms ([`crate::direct`]), which skip
//!   formula building entirely — the paper's own recommendation for the
//!   best bounds.
//!
//! Every constructor is verified in tests by the round-trip
//! `models(δ_R) = R`.

use crate::cnf::{Clause, CnfFormula, Literal};
use crate::error::{Error, Result};
use crate::gf2::{nullspace_basis, LinearSystem};
use crate::relation::BooleanRelation;
use crate::schaefer;
use cqcs_structures::BitSet;

/// Arity limit for the exhaustive Horn/dual-Horn constructions.
pub const HORN_BUILD_MAX_ARITY: usize = 20;

/// Builds the conjunction of all satisfied 2-clauses (including unit
/// clauses as degenerate 2-clauses), the paper's bijunctive δ_R.
///
/// The result defines `R` exactly when `R` is bijunctive; for other
/// relations it is the tightest 2-CNF upper approximation.
pub fn defining_bijunctive(r: &BooleanRelation) -> CnfFormula {
    let k = r.arity();
    let mut clauses = Vec::new();
    let mut literals = Vec::with_capacity(2 * k);
    for v in 0..k as u32 {
        literals.push(Literal::pos(v));
        literals.push(Literal::neg(v));
    }
    // Whether every tuple of R satisfies the clause (tuple masks encode
    // the assignment: bit i = value of p_i).
    let satisfied = |c: &Clause| {
        r.iter().all(|t| {
            c.literals
                .iter()
                .any(|l| BooleanRelation::bit(t, l.var as usize) == l.positive)
        })
    };
    // Unit clauses.
    for &l in &literals {
        let c = Clause::new(vec![l]);
        if satisfied(&c) {
            clauses.push(c);
        }
    }
    // Proper 2-clauses over distinct variables (tautologies excluded).
    for (i, &l1) in literals.iter().enumerate() {
        for &l2 in &literals[i + 1..] {
            if l1.var == l2.var {
                continue;
            }
            let c = Clause::new(vec![l1, l2]);
            if satisfied(&c) {
                clauses.push(c);
            }
        }
    }
    CnfFormula::new(k, clauses)
}

/// Builds the linear-equation system defining an affine relation via the
/// nullspace construction of Theorem 3.2.
///
/// The result defines `R` exactly when `R` is affine (this includes the
/// empty relation, which yields the inconsistent equation `0 = 1`).
pub fn defining_affine(r: &BooleanRelation) -> LinearSystem {
    let k = r.arity();
    // Rows of R': each tuple extended with a constant-1 column k.
    let rows: Vec<BitSet> = r
        .iter()
        .map(|t| {
            let mut row = BitSet::new(k + 1);
            for i in 0..k {
                if BooleanRelation::bit(t, i) {
                    row.insert(i);
                }
            }
            row.insert(k);
            row
        })
        .collect();
    let basis = nullspace_basis(&rows, k + 1);
    let mut sys = LinearSystem::new(k);
    for v in basis {
        let rhs = v.contains(k);
        sys.add_equation(v.iter().filter(|&i| i < k), rhs);
    }
    sys
}

/// Builds a Horn CNF defining a Horn (∧-closed) relation.
///
/// Exact by construction: every non-model `σ` is refuted either by a
/// negative clause (no model extends `σ`'s ones) or by the implicate
/// `One(σ) → j` where `j` is forced by the models above `σ`. Subsumed
/// clauses are pruned. Errors if the arity exceeds
/// [`HORN_BUILD_MAX_ARITY`] or the relation is not Horn.
pub fn defining_horn(r: &BooleanRelation) -> Result<CnfFormula> {
    if !schaefer::is_horn(r) {
        return Err(Error::WrongFormulaShape("Horn"));
    }
    build_horn_implicates(r).map(|clauses| CnfFormula::new(r.arity(), clauses))
}

/// Builds a dual-Horn CNF defining a dual-Horn (∨-closed) relation, by
/// bit-flipping into the Horn case and negating every literal.
pub fn defining_dual_horn(r: &BooleanRelation) -> Result<CnfFormula> {
    if !schaefer::is_dual_horn(r) {
        return Err(Error::WrongFormulaShape("dual Horn"));
    }
    let mask = r.ones_mask();
    let flipped = BooleanRelation::new(r.arity(), r.iter().map(|t| !t & mask).collect())
        .expect("flipped tuples stay in range");
    let clauses = build_horn_implicates(&flipped)?
        .into_iter()
        .map(|c| Clause::new(c.literals.into_iter().map(Literal::negated).collect()))
        .collect();
    Ok(CnfFormula::new(r.arity(), clauses))
}

/// Shared Horn implicate enumeration (see [`defining_horn`]).
fn build_horn_implicates(r: &BooleanRelation) -> Result<Vec<Clause>> {
    let k = r.arity();
    if k > HORN_BUILD_MAX_ARITY {
        return Err(Error::Invalid(format!(
            "Horn formula construction supports arity ≤ {HORN_BUILD_MAX_ARITY}, got {k}"
        )));
    }
    // (premise mask, head): head = None is a purely negative clause.
    let mut raw: Vec<(u64, Option<usize>)> = Vec::new();
    for sigma in 0..(1u64 << k) {
        if r.contains(sigma) {
            continue;
        }
        // Meet of all models above σ.
        let mut meet = r.ones_mask();
        let mut any = false;
        for t in r.iter() {
            if t & sigma == sigma {
                meet &= t;
                any = true;
            }
        }
        if !any {
            raw.push((sigma, None));
        } else {
            let forced = meet & !sigma;
            debug_assert_ne!(forced, 0, "σ ∉ R but nothing forced — R not ∧-closed?");
            raw.push((sigma, Some(forced.trailing_zeros() as usize)));
        }
    }
    // Subsumption pruning: (X', h) subsumes (X, h) and (X', None)
    // subsumes (X, anything) when X' ⊆ X. Process by ascending premise
    // size; cap the quadratic scan on pathological inputs.
    raw.sort_by_key(|&(premise, _)| premise.count_ones());
    let mut kept: Vec<(u64, Option<usize>)> = Vec::new();
    let prune = raw.len() <= 20_000;
    for (premise, head) in raw {
        let subsumed = prune
            && kept
                .iter()
                .any(|&(p2, h2)| p2 & premise == p2 && (h2.is_none() || h2 == head));
        if !subsumed {
            kept.push((premise, head));
        }
    }
    Ok(kept
        .into_iter()
        .map(|(premise, head)| {
            let mut lits: Vec<Literal> = (0..k as u32)
                .filter(|&i| premise & (1 << i) != 0)
                .map(Literal::neg)
                .collect();
            if let Some(h) = head {
                lits.push(Literal::pos(h as u32));
            }
            Clause::new(lits)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(arity: usize, tuples: &[u64]) -> BooleanRelation {
        BooleanRelation::new(arity, tuples.to_vec()).unwrap()
    }

    /// Enumerates the linear system's solution set as a relation.
    fn system_models(sys: &LinearSystem, k: usize) -> BooleanRelation {
        let mut masks = Vec::new();
        for bits in 0..(1u64 << k) {
            let a: Vec<bool> = (0..k).map(|i| bits & (1 << i) != 0).collect();
            if sys.eval(&a) {
                masks.push(bits);
            }
        }
        BooleanRelation::new(k, masks).unwrap()
    }

    #[test]
    fn bijunctive_roundtrip_xor() {
        let r = rel(2, &[0b01, 0b10]);
        let f = defining_bijunctive(&r);
        assert!(f.is_2cnf());
        assert_eq!(f.models_as_relation(), r);
    }

    #[test]
    fn bijunctive_roundtrip_random_closed() {
        // Generate bijunctive relations by closing random sets under
        // majority, then verify the round trip.
        for seed in 0..30u64 {
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut tuples: Vec<u64> = (0..3)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x & 0b11111
                })
                .collect();
            // Close under majority.
            loop {
                let mut added = false;
                let snapshot = tuples.clone();
                for &a in &snapshot {
                    for &b in &snapshot {
                        for &c in &snapshot {
                            let m = BooleanRelation::majority(a, b, c);
                            if !tuples.contains(&m) {
                                tuples.push(m);
                                added = true;
                            }
                        }
                    }
                }
                if !added {
                    break;
                }
            }
            let r = rel(5, &tuples);
            assert!(schaefer::is_bijunctive(&r));
            let f = defining_bijunctive(&r);
            assert_eq!(f.models_as_relation(), r, "seed {seed}");
        }
    }

    #[test]
    fn bijunctive_unit_clause_case() {
        // R = {11}: forced p0 and p1.
        let r = rel(2, &[0b11]);
        let f = defining_bijunctive(&r);
        assert_eq!(f.models_as_relation(), r);
    }

    #[test]
    fn affine_roundtrip_examples() {
        // Even parity on 3 vars: x0 ⊕ x1 ⊕ x2 = 0.
        let even = rel(3, &[0b000, 0b011, 0b101, 0b110]);
        assert!(schaefer::is_affine(&even));
        let sys = defining_affine(&even);
        assert_eq!(system_models(&sys, 3), even);
        // C4's first labeling (Example 3.8).
        let c4: Vec<u64> = [[0u64, 0, 0, 1], [0, 1, 1, 0], [1, 0, 1, 1], [1, 1, 0, 0]]
            .iter()
            .map(|t| t.iter().enumerate().fold(0, |m, (i, &b)| m | (b << i)))
            .collect();
        let r = rel(4, &c4);
        assert!(schaefer::is_affine(&r));
        let sys = defining_affine(&r);
        assert_eq!(system_models(&sys, 4), r);
        // Affine basis size ≤ min(k+1, |R|) (fundamental theorem, as the
        // paper notes).
        assert!(sys.equations.len() <= 5);
    }

    #[test]
    fn affine_empty_relation_yields_inconsistency() {
        let r = rel(3, &[]);
        let sys = defining_affine(&r);
        assert!(sys.solve().is_none());
        assert_eq!(system_models(&sys, 3).len(), 0);
    }

    #[test]
    fn affine_full_relation_yields_no_constraints() {
        let all: Vec<u64> = (0..8).collect();
        let r = rel(3, &all);
        let sys = defining_affine(&r);
        assert_eq!(system_models(&sys, 3), r);
    }

    #[test]
    fn affine_roundtrip_random_closed() {
        for seed in 0..30u64 {
            let mut x = seed.wrapping_mul(0xA076_1D64_78BD_642F) | 1;
            let mut tuples: Vec<u64> = (0..2)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x & 0b1111
                })
                .collect();
            loop {
                let mut added = false;
                let snapshot = tuples.clone();
                for &a in &snapshot {
                    for &b in &snapshot {
                        for &c in &snapshot {
                            if !tuples.contains(&(a ^ b ^ c)) {
                                tuples.push(a ^ b ^ c);
                                added = true;
                            }
                        }
                    }
                }
                if !added {
                    break;
                }
            }
            let r = rel(4, &tuples);
            let sys = defining_affine(&r);
            assert_eq!(system_models(&sys, 4), r, "seed {seed}");
        }
    }

    #[test]
    fn horn_roundtrip_examples() {
        // Implication x→y: {00, 10, 11} with y = bit 1.
        let imp = rel(2, &[0b00, 0b10, 0b11]);
        let f = defining_horn(&imp).unwrap();
        assert!(f.is_horn());
        assert_eq!(f.models_as_relation(), imp);

        // The tricky case from the design discussion: R = {110, 101,
        // 100} as position-sets {1,2},{1,3},{1} → masks with LSB-first.
        let r = rel(3, &[0b011, 0b101, 0b001]);
        assert!(schaefer::is_horn(&r));
        let f = defining_horn(&r).unwrap();
        assert!(f.is_horn());
        assert_eq!(f.models_as_relation(), r);
    }

    #[test]
    fn horn_roundtrip_random_closed() {
        for seed in 0..40u64 {
            let mut x = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
            let mut tuples: Vec<u64> = (0..4)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x & 0b11111
                })
                .collect();
            loop {
                let mut added = false;
                let snapshot = tuples.clone();
                for &a in &snapshot {
                    for &b in &snapshot {
                        if !tuples.contains(&(a & b)) {
                            tuples.push(a & b);
                            added = true;
                        }
                    }
                }
                if !added {
                    break;
                }
            }
            let r = rel(5, &tuples);
            let f = defining_horn(&r).unwrap();
            assert!(f.is_horn());
            assert_eq!(f.models_as_relation(), r, "seed {seed}");
        }
    }

    #[test]
    fn dual_horn_roundtrip() {
        for seed in 0..40u64 {
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut tuples: Vec<u64> = (0..4)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x & 0b1111
                })
                .collect();
            loop {
                let mut added = false;
                let snapshot = tuples.clone();
                for &a in &snapshot {
                    for &b in &snapshot {
                        if !tuples.contains(&(a | b)) {
                            tuples.push(a | b);
                            added = true;
                        }
                    }
                }
                if !added {
                    break;
                }
            }
            let r = rel(4, &tuples);
            let f = defining_dual_horn(&r).unwrap();
            assert!(f.is_dual_horn());
            assert_eq!(f.models_as_relation(), r, "seed {seed}");
        }
    }

    #[test]
    fn horn_rejects_non_horn() {
        let xor = rel(2, &[0b01, 0b10]);
        assert!(matches!(
            defining_horn(&xor).unwrap_err(),
            Error::WrongFormulaShape("Horn")
        ));
        assert!(matches!(
            defining_dual_horn(&xor).unwrap_err(),
            Error::WrongFormulaShape("dual Horn")
        ));
    }

    #[test]
    fn horn_empty_relation() {
        let r = rel(2, &[]);
        let f = defining_horn(&r).unwrap();
        assert_eq!(f.models_as_relation(), r);
    }

    #[test]
    fn horn_full_relation_is_empty_formula() {
        let all: Vec<u64> = (0..4).collect();
        let r = rel(2, &all);
        let f = defining_horn(&r).unwrap();
        assert!(f.clauses.is_empty(), "no non-models → no clauses");
    }

    #[test]
    fn subsumption_keeps_formula_small() {
        // "≤ 1 one" on 4 positions: negative clauses over pairs suffice;
        // pruning must eliminate clauses with larger premises.
        let tuples: Vec<u64> = vec![0b0000, 0b0001, 0b0010, 0b0100, 0b1000];
        let r = rel(4, &tuples);
        let f = defining_horn(&r).unwrap();
        assert_eq!(f.models_as_relation(), r);
        assert!(
            f.clauses.iter().all(|c| c.literals.len() <= 2),
            "pair clauses subsume the rest: {f}"
        );
        assert_eq!(f.clauses.len(), 6, "C(4,2) pair exclusions");
    }
}

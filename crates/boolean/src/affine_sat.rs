//! Affine satisfiability: solving conjunctions of GF(2) linear
//! equations.
//!
//! The affine branch of Theorem 3.3 instantiates the defining equations
//! of each affine relation per tuple of the left structure and solves
//! the combined system by Gaussian elimination — "cubic in the length of
//! φ_A" per the paper [Sch78]. The elimination itself lives in
//! [`crate::gf2`]; this module is the solver entry point.

use crate::gf2::LinearSystem;

/// Solves an affine formula (a [`LinearSystem`]). Returns one model or
/// `None` if the system is inconsistent.
pub fn solve_affine(sys: &LinearSystem) -> Option<Vec<bool>> {
    sys.solve()
}

/// Whether the affine formula is satisfiable.
pub fn affine_satisfiable(sys: &LinearSystem) -> bool {
    sys.solve().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_chain() {
        // x_i ⊕ x_{i+1} = 1 along a chain: alternating solution.
        let mut sys = LinearSystem::new(6);
        for i in 0..5 {
            sys.add_equation([i, i + 1], true);
        }
        let m = solve_affine(&sys).unwrap();
        for i in 0..5 {
            assert_ne!(m[i], m[i + 1]);
        }
    }

    #[test]
    fn odd_parity_cycle_unsat() {
        // x_i ⊕ x_{i+1} = 1 around an odd cycle is inconsistent.
        let mut sys = LinearSystem::new(5);
        for i in 0..5 {
            sys.add_equation([i, (i + 1) % 5], true);
        }
        assert!(!affine_satisfiable(&sys));
    }

    #[test]
    fn even_parity_cycle_sat() {
        let mut sys = LinearSystem::new(4);
        for i in 0..4 {
            sys.add_equation([i, (i + 1) % 4], true);
        }
        assert!(affine_satisfiable(&sys));
    }
}

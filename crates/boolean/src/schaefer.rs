//! Schaefer's classification by closure properties (Theorem 3.1).
//!
//! Schaefer's dichotomy identifies six classes of Boolean structures for
//! which `CSP(B)` is tractable. Theorem 3.1 of the paper shows the class
//! `SC` is polynomial-time recognizable via closure criteria:
//!
//! * **0-valid / 1-valid** — the relation contains `(0,…,0)` / `(1,…,1)`;
//! * **Horn** — closed under componentwise `∧` (Dechter–Pearl);
//! * **dual Horn** — closed under componentwise `∨` (Dechter–Pearl);
//! * **bijunctive** — closed under componentwise majority (Schaefer);
//! * **affine** — closed under `t₁ ⊕ t₂ ⊕ t₃` (Schaefer).
//!
//! All criteria are `O(|R|²)` or `O(|R|³)` membership checks on the
//! bit-packed relation.

use crate::relation::{BooleanRelation, BooleanStructure};

/// One of Schaefer's six tractable classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchaeferClass {
    /// Contains the all-zeros tuple.
    ZeroValid,
    /// Contains the all-ones tuple.
    OneValid,
    /// Definable by a CNF with ≤ 1 positive literal per clause.
    Horn,
    /// Definable by a CNF with ≤ 1 negative literal per clause.
    DualHorn,
    /// Definable by a 2-CNF.
    Bijunctive,
    /// Definable by a conjunction of linear equations over GF(2).
    Affine,
}

impl SchaeferClass {
    /// All six classes, in the crate's canonical order.
    pub const ALL: [SchaeferClass; 6] = [
        SchaeferClass::ZeroValid,
        SchaeferClass::OneValid,
        SchaeferClass::Horn,
        SchaeferClass::DualHorn,
        SchaeferClass::Bijunctive,
        SchaeferClass::Affine,
    ];

    fn bit(self) -> u8 {
        match self {
            SchaeferClass::ZeroValid => 1,
            SchaeferClass::OneValid => 2,
            SchaeferClass::Horn => 4,
            SchaeferClass::DualHorn => 8,
            SchaeferClass::Bijunctive => 16,
            SchaeferClass::Affine => 32,
        }
    }
}

impl std::fmt::Display for SchaeferClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SchaeferClass::ZeroValid => "0-valid",
            SchaeferClass::OneValid => "1-valid",
            SchaeferClass::Horn => "Horn",
            SchaeferClass::DualHorn => "dual Horn",
            SchaeferClass::Bijunctive => "bijunctive",
            SchaeferClass::Affine => "affine",
        };
        f.write_str(name)
    }
}

/// A subset of Schaefer's six classes (a relation or structure may lie
/// in several at once — see Example 3.8's two labelings of `C₄`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchaeferSet(u8);

impl SchaeferSet {
    /// The empty set (not Schaefer).
    pub fn empty() -> Self {
        SchaeferSet(0)
    }

    /// The set of all six classes.
    pub fn all() -> Self {
        SchaeferSet(0b111111)
    }

    /// Membership test.
    pub fn contains(self, c: SchaeferClass) -> bool {
        self.0 & c.bit() != 0
    }

    /// Adds a class.
    pub fn insert(&mut self, c: SchaeferClass) {
        self.0 |= c.bit();
    }

    /// Set intersection.
    pub fn intersect(self, other: SchaeferSet) -> SchaeferSet {
        SchaeferSet(self.0 & other.0)
    }

    /// Whether any class applies (i.e. the relation/structure is in
    /// Schaefer's tractable class `SC`).
    pub fn is_schaefer(self) -> bool {
        self.0 != 0
    }

    /// Whether one of the two *trivial* classes (0-valid / 1-valid)
    /// applies.
    pub fn is_trivial(self) -> bool {
        self.contains(SchaeferClass::ZeroValid) || self.contains(SchaeferClass::OneValid)
    }

    /// Iterates over the classes in canonical order.
    pub fn iter(self) -> impl Iterator<Item = SchaeferClass> {
        SchaeferClass::ALL
            .into_iter()
            .filter(move |c| self.contains(*c))
    }
}

impl std::fmt::Display for SchaeferSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.iter().map(|c| c.to_string()).collect();
        write!(f, "{{{}}}", names.join(", "))
    }
}

/// Whether `r` contains the all-zeros tuple.
pub fn is_zero_valid(r: &BooleanRelation) -> bool {
    r.contains(0)
}

/// Whether `r` contains the all-ones tuple.
pub fn is_one_valid(r: &BooleanRelation) -> bool {
    r.contains(r.ones_mask())
}

/// Dechter–Pearl criterion: `r` is Horn iff closed under componentwise
/// `∧`.
pub fn is_horn(r: &BooleanRelation) -> bool {
    for t1 in r.iter() {
        for t2 in r.iter() {
            if t2 >= t1 {
                break; // t1 ∧ t2 = t2 ∧ t1; diagonal is trivial
            }
            if !r.contains(t1 & t2) {
                return false;
            }
        }
    }
    true
}

/// Dechter–Pearl criterion: `r` is dual Horn iff closed under
/// componentwise `∨`.
pub fn is_dual_horn(r: &BooleanRelation) -> bool {
    for t1 in r.iter() {
        for t2 in r.iter() {
            if t2 >= t1 {
                break;
            }
            if !r.contains(t1 | t2) {
                return false;
            }
        }
    }
    true
}

/// Schaefer's criterion: `r` is bijunctive iff closed under
/// componentwise majority of triples.
pub fn is_bijunctive(r: &BooleanRelation) -> bool {
    let tuples: Vec<u64> = r.iter().collect();
    for (i, &t1) in tuples.iter().enumerate() {
        for &t2 in &tuples[i..] {
            for &t3 in &tuples[i..] {
                if !r.contains(BooleanRelation::majority(t1, t2, t3)) {
                    return false;
                }
            }
        }
    }
    true
}

/// Schaefer's criterion: `r` is affine iff closed under `t₁ ⊕ t₂ ⊕ t₃`.
pub fn is_affine(r: &BooleanRelation) -> bool {
    let tuples: Vec<u64> = r.iter().collect();
    for (i, &t1) in tuples.iter().enumerate() {
        for (j, &t2) in tuples.iter().enumerate().skip(i) {
            for &t3 in &tuples[j..] {
                if !r.contains(t1 ^ t2 ^ t3) {
                    return false;
                }
            }
        }
    }
    true
}

/// Classifies a single relation against all six criteria.
pub fn classify_relation(r: &BooleanRelation) -> SchaeferSet {
    let mut set = SchaeferSet::empty();
    if is_zero_valid(r) {
        set.insert(SchaeferClass::ZeroValid);
    }
    if is_one_valid(r) {
        set.insert(SchaeferClass::OneValid);
    }
    if is_horn(r) {
        set.insert(SchaeferClass::Horn);
    }
    if is_dual_horn(r) {
        set.insert(SchaeferClass::DualHorn);
    }
    if is_bijunctive(r) {
        set.insert(SchaeferClass::Bijunctive);
    }
    if is_affine(r) {
        set.insert(SchaeferClass::Affine);
    }
    set
}

/// Classifies a Boolean structure: a class applies iff it applies to
/// **every** relation (Schaefer's definition). An empty structure is in
/// all six classes.
pub fn classify_structure(b: &BooleanStructure) -> SchaeferSet {
    b.relations()
        .iter()
        .map(|(_, r)| classify_relation(r))
        .fold(SchaeferSet::all(), SchaeferSet::intersect)
}

/// Whether `b` is a Schaefer structure (`b ∈ SC`), i.e. `CSP(b)` is
/// tractable by Schaefer's dichotomy.
pub fn is_schaefer_structure(b: &BooleanStructure) -> bool {
    classify_structure(b).is_schaefer()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::BooleanRelation;

    fn rel(arity: usize, tuples: &[u64]) -> BooleanRelation {
        BooleanRelation::new(arity, tuples.to_vec()).unwrap()
    }

    /// Exhaustive reference check of a closure property.
    fn closed_under(r: &BooleanRelation, op: impl Fn(u64, u64, u64) -> u64) -> bool {
        for a in r.iter() {
            for b in r.iter() {
                for c in r.iter() {
                    if !r.contains(op(a, b, c)) {
                        return false;
                    }
                }
            }
        }
        true
    }

    #[test]
    fn one_in_three_is_np_side() {
        // Positive one-in-three 3-SAT (§2): in none of the six classes.
        let r = rel(3, &[0b001, 0b010, 0b100]);
        let set = classify_relation(&r);
        assert!(!set.is_schaefer(), "got {set}");
    }

    #[test]
    fn implication_relation_classes() {
        // x → y = {00, 01, 11}: Horn, dual Horn, bijunctive, 0- and
        // 1-valid; not affine (00 ⊕ 01 ⊕ 11 = 10 ∉ R).
        let r = rel(2, &[0b00, 0b10, 0b11]); // masks: y is bit 1
        let set = classify_relation(&r);
        assert!(set.contains(SchaeferClass::Horn));
        assert!(set.contains(SchaeferClass::DualHorn));
        assert!(set.contains(SchaeferClass::Bijunctive));
        assert!(set.contains(SchaeferClass::ZeroValid));
        assert!(set.contains(SchaeferClass::OneValid));
        assert!(!set.contains(SchaeferClass::Affine));
    }

    #[test]
    fn xor_is_affine_and_bijunctive_not_horn() {
        // x ⊕ y = {01, 10}.
        let r = rel(2, &[0b01, 0b10]);
        let set = classify_relation(&r);
        assert!(set.contains(SchaeferClass::Affine));
        assert!(
            set.contains(SchaeferClass::Bijunctive),
            "2 tuples are always bijunctive"
        );
        assert!(!set.contains(SchaeferClass::Horn), "01 ∧ 10 = 00 ∉ R");
        assert!(!set.contains(SchaeferClass::DualHorn), "01 ∨ 10 = 11 ∉ R");
        assert!(!set.contains(SchaeferClass::ZeroValid));
        assert!(!set.contains(SchaeferClass::OneValid));
    }

    #[test]
    fn any_two_tuple_relation_is_bijunctive() {
        // maj(a,b,b) = b, so with ≤ 2 tuples closure is automatic — the
        // observation powering Saraiya's case (Prop 3.6).
        for (a, b) in [(0b0011u64, 0b1100u64), (0b0000, 0b1111), (0b0101, 0b0110)] {
            let r = rel(4, &[a, b]);
            assert!(is_bijunctive(&r), "({a:#b},{b:#b})");
            assert!(is_affine(&r), "two tuples are affine too: a⊕b⊕b = a");
        }
    }

    #[test]
    fn horn_criterion_matches_brute_force() {
        // Cross-validate the pairwise check against the triple-wise
        // reference (∧ is associative/idempotent so pairs suffice).
        for seed in 0..50u64 {
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut tuples = Vec::new();
            for _ in 0..4 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                tuples.push(x & 0b1111);
            }
            let r = rel(4, &tuples);
            assert_eq!(
                is_horn(&r),
                closed_under(&r, |a, b, c| a & b & c),
                "tuples {tuples:?}"
            );
            assert_eq!(
                is_dual_horn(&r),
                closed_under(&r, |a, b, c| a | b | c),
                "tuples {tuples:?}"
            );
        }
    }

    #[test]
    fn affine_and_bijunctive_match_brute_force() {
        for seed in 0..50u64 {
            let mut x = seed.wrapping_mul(0xA076_1D64_78BD_642F) | 1;
            let mut tuples = Vec::new();
            for _ in 0..5 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                tuples.push(x & 0b111);
            }
            let r = rel(3, &tuples);
            assert_eq!(is_affine(&r), closed_under(&r, |a, b, c| a ^ b ^ c));
            assert_eq!(
                is_bijunctive(&r),
                closed_under(&r, BooleanRelation::majority)
            );
        }
    }

    #[test]
    fn c4_first_labeling_is_affine_only() {
        // Example 3.8: E' = {(0,0,0,1), (0,1,1,0), (1,0,1,1), (1,1,0,0)}
        // with tuple (a,b,c,d) written position 0 first (LSB).
        let masks: Vec<u64> = [[0u64, 0, 0, 1], [0, 1, 1, 0], [1, 0, 1, 1], [1, 1, 0, 0]]
            .iter()
            .map(|t| t.iter().enumerate().fold(0, |m, (i, &b)| m | (b << i)))
            .collect();
        let r = rel(4, &masks);
        let set = classify_relation(&r);
        assert!(set.contains(SchaeferClass::Affine));
        assert!(!set.contains(SchaeferClass::ZeroValid));
        assert!(!set.contains(SchaeferClass::OneValid));
        assert!(!set.contains(SchaeferClass::Horn));
        assert!(!set.contains(SchaeferClass::DualHorn));
        assert!(!set.contains(SchaeferClass::Bijunctive));
    }

    #[test]
    fn c4_second_labeling_is_affine_and_bijunctive() {
        // Example 3.8's alternative labeling: E'' = {(0,0,1,0),
        // (1,0,1,1), (1,1,0,1), (0,1,0,0)} — affine AND bijunctive,
        // neither Horn nor dual Horn.
        let masks: Vec<u64> = [[0u64, 0, 1, 0], [1, 0, 1, 1], [1, 1, 0, 1], [0, 1, 0, 0]]
            .iter()
            .map(|t| t.iter().enumerate().fold(0, |m, (i, &b)| m | (b << i)))
            .collect();
        let r = rel(4, &masks);
        let set = classify_relation(&r);
        assert!(set.contains(SchaeferClass::Affine));
        assert!(set.contains(SchaeferClass::Bijunctive));
        assert!(!set.contains(SchaeferClass::Horn));
        assert!(!set.contains(SchaeferClass::DualHorn));
    }

    #[test]
    fn structure_classification_intersects() {
        // R1 = x→y (not affine), R2 = x⊕y (not Horn): the structure's
        // class set is the intersection — bijunctive survives.
        let imp = rel(2, &[0b00, 0b10, 0b11]);
        let xor = rel(2, &[0b01, 0b10]);
        let b = BooleanStructure::new(vec![("I".into(), imp), ("X".into(), xor)]);
        let set = classify_structure(&b);
        assert!(set.contains(SchaeferClass::Bijunctive));
        assert!(!set.contains(SchaeferClass::Horn));
        assert!(!set.contains(SchaeferClass::Affine));
        assert!(set.is_schaefer());
        assert!(is_schaefer_structure(&b));
    }

    #[test]
    fn empty_structure_is_everything() {
        let b = BooleanStructure::new(vec![]);
        assert_eq!(classify_structure(&b), SchaeferSet::all());
    }

    #[test]
    fn empty_relation_is_closed_but_not_valid() {
        let r = rel(2, &[]);
        let set = classify_relation(&r);
        assert!(set.contains(SchaeferClass::Horn));
        assert!(set.contains(SchaeferClass::Affine));
        assert!(!set.contains(SchaeferClass::ZeroValid));
        assert!(!set.contains(SchaeferClass::OneValid));
    }

    #[test]
    fn set_display() {
        let mut s = SchaeferSet::empty();
        s.insert(SchaeferClass::Horn);
        s.insert(SchaeferClass::Affine);
        assert_eq!(s.to_string(), "{Horn, affine}");
        assert!(!s.is_trivial());
        s.insert(SchaeferClass::ZeroValid);
        assert!(s.is_trivial());
    }
}

//! # cqcs-boolean — Boolean constraint satisfaction (§3 of the paper)
//!
//! Everything Kolaitis & Vardi's §3 needs, built from scratch:
//!
//! * [`relation`] — bit-packed Boolean relations and Boolean structures
//!   (structures with universe `{0, 1}`), with conversions to and from
//!   [`cqcs_structures::Structure`];
//! * [`schaefer`] — Schaefer's six tractable classes recognized by their
//!   closure properties (Theorem 3.1): 0-valid, 1-valid, Horn (closed
//!   under `∧`), dual Horn (closed under `∨`), bijunctive (closed under
//!   componentwise majority), affine (closed under `⊕` of triples);
//! * [`cnf`] / [`gf2`] — the propositional and linear-algebra substrate;
//! * [`formula_build`] — defining formulas δ_R (Theorem 3.2);
//! * [`horn_sat`] / [`two_sat`] / [`affine_sat`] / [`dpll`] — the SAT
//!   solvers the uniform algorithm dispatches to;
//! * [`uniform`] — the formula-building uniform algorithm
//!   (Theorem 3.3): `CSP(SC)` in polynomial time;
//! * [`direct`] — the direct quadratic-time algorithms that skip
//!   formula building (Theorem 3.4);
//! * [`booleanize`] — Booleanization of arbitrary CSP instances
//!   (Lemma 3.5) powering Saraiya's two-atom containment (Prop 3.6) and
//!   the `C₄` example (Example 3.8).

pub mod affine_sat;
pub mod booleanize;
pub mod cnf;
pub mod direct;
pub mod dpll;
pub mod error;
pub mod formula_build;
pub mod gf2;
pub mod horn_sat;
pub mod relation;
pub mod schaefer;
pub mod two_sat;
pub mod uniform;

pub use booleanize::{
    booleanize, booleanize_instance, booleanize_template, BooleanizeInfo, BooleanizedTemplate,
};
pub use cnf::{Clause, CnfFormula, Literal};
pub use error::{Error, Result};
pub use gf2::LinearSystem;
pub use relation::{BooleanRelation, BooleanStructure};
pub use schaefer::{classify_relation, classify_structure, SchaeferClass, SchaeferSet};
pub use uniform::solve_schaefer;

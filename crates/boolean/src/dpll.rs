//! A small DPLL SAT solver: the general-CNF baseline.
//!
//! The paper's point is that Schaefer instances *avoid* general SAT; the
//! benchmark suite still needs a complete baseline to show what the
//! tractable routes are being compared against. This is a classic DPLL
//! with unit propagation and first-unassigned branching — deliberately
//! free of modern CDCL machinery so the asymptotic contrast with the
//! polynomial routes stays visible.

use crate::cnf::CnfFormula;

/// Solves an arbitrary CNF by DPLL. Returns a model or `None`.
pub fn solve_dpll(f: &CnfFormula) -> Option<Vec<bool>> {
    let mut assignment: Vec<Option<bool>> = vec![None; f.num_vars];
    if dpll(f, &mut assignment) {
        Some(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
    } else {
        None
    }
}

/// Clause state under a partial assignment.
enum ClauseState {
    Satisfied,
    /// All literals false.
    Conflict,
    /// Exactly one literal unassigned, the rest false.
    Unit(crate::cnf::Literal),
    Unresolved,
}

fn clause_state(c: &crate::cnf::Clause, assignment: &[Option<bool>]) -> ClauseState {
    let mut unassigned = None;
    let mut unassigned_count = 0;
    for &lit in &c.literals {
        match assignment[lit.var as usize] {
            Some(v) if v == lit.positive => return ClauseState::Satisfied,
            Some(_) => {}
            None => {
                unassigned = Some(lit);
                unassigned_count += 1;
            }
        }
    }
    match unassigned_count {
        0 => ClauseState::Conflict,
        1 => ClauseState::Unit(unassigned.expect("counted one")),
        _ => ClauseState::Unresolved,
    }
}

fn dpll(f: &CnfFormula, assignment: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to fixpoint; record the trail for backtracking.
    let mut trail: Vec<u32> = Vec::new();
    loop {
        let mut propagated = false;
        for c in &f.clauses {
            match clause_state(c, assignment) {
                ClauseState::Conflict => {
                    for v in trail {
                        assignment[v as usize] = None;
                    }
                    return false;
                }
                ClauseState::Unit(lit) => {
                    assignment[lit.var as usize] = Some(lit.positive);
                    trail.push(lit.var);
                    propagated = true;
                }
                _ => {}
            }
        }
        if !propagated {
            break;
        }
    }
    // Branch on the first unassigned variable.
    match assignment.iter().position(|v| v.is_none()) {
        None => true, // no conflicts, everything assigned
        Some(v) => {
            for value in [true, false] {
                assignment[v] = Some(value);
                if dpll(f, assignment) {
                    return true;
                }
                assignment[v] = None;
            }
            for v in trail {
                assignment[v as usize] = None;
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Literal};

    fn lit(v: u32, p: bool) -> Literal {
        Literal {
            var: v,
            positive: p,
        }
    }

    #[test]
    fn solves_one_in_three() {
        // Positive one-in-three on 3 vars, clauses encoded directly:
        // at least one, and pairwise not-both.
        let f = CnfFormula::new(
            3,
            vec![
                Clause::new(vec![lit(0, true), lit(1, true), lit(2, true)]),
                Clause::new(vec![lit(0, false), lit(1, false)]),
                Clause::new(vec![lit(0, false), lit(2, false)]),
                Clause::new(vec![lit(1, false), lit(2, false)]),
            ],
        );
        let m = solve_dpll(&f).unwrap();
        assert!(f.eval(&m));
        assert_eq!(m.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn detects_unsat() {
        // (p0)(¬p0).
        let f = CnfFormula::new(
            1,
            vec![
                Clause::new(vec![lit(0, true)]),
                Clause::new(vec![lit(0, false)]),
            ],
        );
        assert!(solve_dpll(&f).is_none());
    }

    #[test]
    fn empty_formula_sat() {
        let f = CnfFormula::new(3, vec![]);
        assert!(solve_dpll(&f).is_some());
    }

    #[test]
    fn empty_clause_unsat() {
        let f = CnfFormula::new(1, vec![Clause::default()]);
        assert!(solve_dpll(&f).is_none());
    }

    #[test]
    fn agrees_with_exhaustive_search() {
        let mut x = 0xC0FFEEu64;
        for round in 0..60 {
            let nv = 5usize;
            let mut clauses = Vec::new();
            for _ in 0..8 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let width = 1 + (x % 3) as usize;
                let lits: Vec<Literal> = (0..width)
                    .map(|i| lit(((x >> (5 * i)) % 5) as u32, (x >> (20 + i)) & 1 != 0))
                    .collect();
                clauses.push(Clause::new(lits));
            }
            let f = CnfFormula::new(nv, clauses);
            let brute = !f.models().is_empty();
            match solve_dpll(&f) {
                Some(m) => {
                    assert!(f.eval(&m), "round {round}");
                    assert!(brute);
                }
                None => assert!(!brute, "round {round}"),
            }
        }
    }
}

//! The direct quadratic-time algorithms of Theorem 3.4.
//!
//! For Horn, dual Horn, and bijunctive templates the paper improves on
//! the cubic formula-building route by operating on the structures
//! directly:
//!
//! * **Horn** ([`horn_csp`]) — grow the set `One` of elements of `A`
//!   that must map to 1: whenever a tuple `t` of `A` has current ones
//!   `One(t)` and the corresponding relation `Q'` of `B` *satisfies*
//!   `One(t) → j` (every `Q'`-tuple extending the ones has bit `j`),
//!   add `t_j` to `One`. At the fixpoint a homomorphism exists iff every
//!   tuple has an extension in `Q'`, and the indicator of `One` is one.
//!   Runs in `O(‖A‖·‖B‖)` using the per-element occurrence lists.
//! * **Dual Horn** ([`dual_horn_csp`]) — by 0/1 duality.
//! * **Bijunctive** ([`bijunctive_csp`]) — the paper's emulation of the
//!   phase-based 2-SAT algorithm [LP97]: pick an unassigned element,
//!   guess a value, propagate through the `T_{Q',k,i}` tuple sets,
//!   undo and flip on conflict; both guesses failing means no
//!   homomorphism.
//! * **Trivial classes** ([`trivial_csp`]) — 0-valid/1-valid templates
//!   always admit the constant homomorphism.

use crate::error::{Error, Result};
use crate::relation::{BooleanRelation, BooleanStructure};
use crate::schaefer;
use cqcs_structures::{Element, RelId, Structure};

/// Extracts `B`'s relations as bit-packed Boolean relations, indexed by
/// `RelId` order, after checking the instance is well-formed.
fn boolean_template(a: &Structure, b: &Structure) -> Result<Vec<BooleanRelation>> {
    if !a.same_vocabulary(b) {
        return Err(Error::Invalid(
            "left and right structures are over different vocabularies".into(),
        ));
    }
    let bs = BooleanStructure::from_structure(b)?;
    Ok(bs.relations().iter().map(|(_, r)| r.clone()).collect())
}

/// The constant homomorphism for a 0-valid (`value = false`) or 1-valid
/// (`value = true`) template.
pub fn trivial_csp(a: &Structure, value: bool) -> Vec<bool> {
    vec![value; a.universe()]
}

/// Current ones-mask of an `A`-tuple under a partial 0/1 assignment.
#[inline]
fn ones_mask(tuple: &[Element], one: &[bool]) -> u64 {
    tuple
        .iter()
        .enumerate()
        .fold(0u64, |m, (i, e)| m | ((one[e.index()] as u64) << i))
}

/// Theorem 3.4, Horn case. Returns the minimal homomorphism (fewest
/// ones) as a 0/1 map, or `None` if there is none.
///
/// Errors if `B` is not a Boolean structure with every relation Horn.
pub fn horn_csp(a: &Structure, b: &Structure) -> Result<Option<Vec<bool>>> {
    let template = boolean_template(a, b)?;
    if let Some((id, _)) = template
        .iter()
        .enumerate()
        .find(|(_, r)| !schaefer::is_horn(r))
    {
        return Err(Error::Invalid(format!(
            "relation `{}` is not Horn",
            a.vocabulary().name(RelId::from_index(id))
        )));
    }
    Ok(horn_fixpoint(a, &template))
}

/// Shared Horn propagation; `template[r]` must be ∧-closed.
fn horn_fixpoint(a: &Structure, template: &[BooleanRelation]) -> Option<Vec<bool>> {
    let mut one = vec![false; a.universe()];
    let mut queue: Vec<Element> = Vec::new();

    // Processes one tuple: either fails (no extension in Q') or forces
    // new elements into One.
    let process =
        |one: &mut Vec<bool>, queue: &mut Vec<Element>, r: RelId, tuple: &[Element]| -> bool {
            let rel = &template[r.index()];
            let mask = ones_mask(tuple, one);
            let mut meet = rel.ones_mask();
            let mut any = false;
            for t in rel.iter() {
                if t & mask == mask {
                    meet &= t;
                    any = true;
                }
            }
            if !any {
                return false; // One(t) has no extension in Q' — monotone, fatal
            }
            let forced = meet & !mask;
            if forced != 0 {
                for (i, e) in tuple.iter().enumerate() {
                    if forced & (1 << i) != 0 && !one[e.index()] {
                        one[e.index()] = true;
                        queue.push(*e);
                    }
                }
            }
            true
        };

    // Initial pass over every tuple (catches ∅ → j units and empty Q').
    for r in a.vocabulary().iter() {
        if a.vocabulary().arity(r) == 0 {
            if !a.relation(r).is_empty() && template[r.index()].is_empty() {
                return None;
            }
            continue;
        }
        for ti in 0..a.relation(r).len() {
            let tuple: Vec<Element> = a.relation(r).tuple(ti).to_vec();
            if !process(&mut one, &mut queue, r, &tuple) {
                return None;
            }
        }
    }
    // Worklist: reprocess the tuples an element occurs in when it joins
    // One (the paper's linked-list traversal).
    while let Some(e) = queue.pop() {
        for &(r, ti) in a.occurrences(e) {
            let tuple: Vec<Element> = a.relation(r).tuple(ti as usize).to_vec();
            if !process(&mut one, &mut queue, r, &tuple) {
                return None;
            }
        }
    }
    Some(one)
}

/// Theorem 3.4, dual Horn case, by 0/1 duality: flip `B`'s bits, run the
/// Horn fixpoint, flip the answer.
pub fn dual_horn_csp(a: &Structure, b: &Structure) -> Result<Option<Vec<bool>>> {
    let template = boolean_template(a, b)?;
    if let Some((id, _)) = template
        .iter()
        .enumerate()
        .find(|(_, r)| !schaefer::is_dual_horn(r))
    {
        return Err(Error::Invalid(format!(
            "relation `{}` is not dual Horn",
            a.vocabulary().name(RelId::from_index(id))
        )));
    }
    let flipped: Vec<BooleanRelation> = template
        .iter()
        .map(|r| {
            let mask = r.ones_mask();
            BooleanRelation::new(r.arity(), r.iter().map(|t| !t & mask).collect())
                .expect("flipped tuples stay in range")
        })
        .collect();
    Ok(horn_fixpoint(a, &flipped).map(|one| one.into_iter().map(|v| !v).collect()))
}

/// Theorem 3.4, bijunctive case: the phase-based propagation algorithm.
pub fn bijunctive_csp(a: &Structure, b: &Structure) -> Result<Option<Vec<bool>>> {
    let template = boolean_template(a, b)?;
    if let Some((id, _)) = template
        .iter()
        .enumerate()
        .find(|(_, r)| !schaefer::is_bijunctive(r))
    {
        return Err(Error::Invalid(format!(
            "relation `{}` is not bijunctive",
            a.vocabulary().name(RelId::from_index(id))
        )));
    }
    // 0-ary preconditions.
    for r in a.vocabulary().iter() {
        if a.vocabulary().arity(r) == 0
            && !a.relation(r).is_empty()
            && template[r.index()].is_empty()
        {
            return Ok(None);
        }
    }

    let n = a.universe();
    let mut value: Vec<Option<bool>> = vec![None; n];

    for start in 0..n {
        if value[start].is_some() {
            continue;
        }
        let mut done = false;
        for guess in [false, true] {
            let mut trail: Vec<usize> = Vec::new();
            if propagate_bijunctive(a, &template, &mut value, &mut trail, start, guess) {
                done = true;
                break;
            }
            for v in trail {
                value[v] = None;
            }
        }
        if !done {
            return Ok(None);
        }
    }
    Ok(Some(
        value
            .into_iter()
            .map(|v| v.expect("all phases assign"))
            .collect(),
    ))
}

/// Assigns `value[start] = guess` and propagates; returns `false` on
/// conflict (leaving the trail for the caller to undo).
fn propagate_bijunctive(
    a: &Structure,
    template: &[BooleanRelation],
    value: &mut [Option<bool>],
    trail: &mut Vec<usize>,
    start: usize,
    guess: bool,
) -> bool {
    value[start] = Some(guess);
    trail.push(start);
    let mut queue = vec![Element::new(start)];
    while let Some(e) = queue.pop() {
        let i = value[e.index()].expect("queued elements are assigned");
        for &(r, ti) in a.occurrences(e) {
            let rel = &template[r.index()];
            let tuple = a.relation(r).tuple(ti as usize);
            // e may occur at several positions of the tuple.
            for (k, &ek) in tuple.iter().enumerate() {
                if ek != e {
                    continue;
                }
                // T_{Q',k,i}: tuples of Q' with bit k equal to i.
                let mut all_and = rel.ones_mask();
                let mut all_or = 0u64;
                let mut any = false;
                for t in rel.iter() {
                    if BooleanRelation::bit(t, k) == i {
                        all_and &= t;
                        all_or |= t;
                        any = true;
                    }
                }
                if !any {
                    return false; // the tuple cannot map anywhere
                }
                // Positions forced to 1 (in all_and) or to 0 (not in
                // all_or).
                for (l, &el) in tuple.iter().enumerate() {
                    let forced = if all_and & (1 << l) != 0 {
                        Some(true)
                    } else if all_or & (1 << l) == 0 {
                        Some(false)
                    } else {
                        None
                    };
                    if let Some(j) = forced {
                        match value[el.index()] {
                            Some(existing) if existing != j => return false,
                            Some(_) => {}
                            None => {
                                value[el.index()] = Some(j);
                                trail.push(el.index());
                                queue.push(el);
                            }
                        }
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcs_structures::generators;
    use cqcs_structures::homomorphism::{homomorphism_exists, is_homomorphism};
    use cqcs_structures::StructureBuilder;
    use std::sync::Arc;

    /// Builds a left structure over the same symbols as a Boolean
    /// template.
    fn left(bs: &BooleanStructure, n: usize, facts: &[(&str, &[u32])]) -> Structure {
        let b = bs.to_structure();
        let mut builder = StructureBuilder::new(Arc::clone(b.vocabulary()), n);
        for (name, tuple) in facts {
            builder.add_fact(name, tuple).unwrap();
        }
        builder.finish()
    }

    fn implication_template() -> BooleanStructure {
        // I(x, y) = x → y (Horn), with y at position 1 (bit 1).
        BooleanStructure::new(vec![(
            "I".into(),
            BooleanRelation::new(2, vec![0b00, 0b10, 0b11]).unwrap(),
        )])
    }

    #[test]
    fn horn_implication_chain() {
        let bs = BooleanStructure::new(vec![
            (
                "I".into(),
                BooleanRelation::new(2, vec![0b00, 0b10, 0b11]).unwrap(),
            ),
            ("T".into(), BooleanRelation::new(1, vec![0b1]).unwrap()),
            ("F".into(), BooleanRelation::new(1, vec![0b0]).unwrap()),
        ]);
        // T(0), I(0,1), I(1,2): forces 0,1,2 all true. Satisfiable.
        let a = left(&bs, 3, &[("T", &[0]), ("I", &[0, 1]), ("I", &[1, 2])]);
        let b = bs.to_structure();
        let h = horn_csp(&a, &b).unwrap().unwrap();
        assert_eq!(h, vec![true, true, true]);
        // Add F(2): now unsatisfiable.
        let a2 = left(
            &bs,
            3,
            &[("T", &[0]), ("I", &[0, 1]), ("I", &[1, 2]), ("F", &[2])],
        );
        assert_eq!(horn_csp(&a2, &b).unwrap(), None);
    }

    #[test]
    fn horn_returns_minimal_model() {
        let bs = implication_template();
        // I(0,1) alone: all-false works and is minimal.
        let a = left(&bs, 2, &[("I", &[0, 1])]);
        let b = bs.to_structure();
        assert_eq!(horn_csp(&a, &b).unwrap().unwrap(), vec![false, false]);
    }

    #[test]
    fn horn_matches_reference_search_on_random_instances() {
        // Random Horn template with a couple of relations; random left
        // structures; compare against the generic backtracking search.
        let horn_rel = BooleanRelation::new(3, vec![0b000, 0b001, 0b011, 0b111]).unwrap();
        assert!(schaefer::is_horn(&horn_rel));
        let unit = BooleanRelation::new(1, vec![0b1]).unwrap();
        let bs = BooleanStructure::new(vec![("R".into(), horn_rel), ("U".into(), unit)]);
        let b = bs.to_structure();
        for seed in 0..20u64 {
            let a = generators::random_structure_over(b.vocabulary(), 6, 5, seed);
            let expected = homomorphism_exists(&a, &b);
            let got = horn_csp(&a, &b).unwrap();
            assert_eq!(got.is_some(), expected, "seed {seed}");
            if let Some(h) = got {
                let map: Vec<_> = h.iter().map(|&v| Element::new(usize::from(v))).collect();
                assert!(is_homomorphism(&map, &a, &b));
            }
        }
    }

    #[test]
    fn dual_horn_matches_reference() {
        // ∨-closure of a random set.
        let mut tuples = vec![0b110u64, 0b011];
        tuples.push(0b110 | 0b011);
        let rel = BooleanRelation::new(3, tuples).unwrap();
        assert!(schaefer::is_dual_horn(&rel));
        let bs = BooleanStructure::new(vec![("R".into(), rel)]);
        let b = bs.to_structure();
        for seed in 0..20u64 {
            let a = generators::random_structure_over(b.vocabulary(), 5, 4, seed);
            let expected = homomorphism_exists(&a, &b);
            let got = dual_horn_csp(&a, &b).unwrap();
            assert_eq!(got.is_some(), expected, "seed {seed}");
            if let Some(h) = got {
                let map: Vec<_> = h.iter().map(|&v| Element::new(usize::from(v))).collect();
                assert!(is_homomorphism(&map, &a, &b));
            }
        }
    }

    #[test]
    fn bijunctive_two_coloring() {
        // K2 as a Boolean template is the XOR relation (Example 3.7).
        let xor = BooleanRelation::new(2, vec![0b01, 0b10]).unwrap();
        let bs = BooleanStructure::new(vec![("E".into(), xor)]);
        let b = bs.to_structure();
        // Even cycle: 2-colorable.
        let mut facts = Vec::new();
        for i in 0..6u32 {
            facts.push([i, (i + 1) % 6]);
        }
        let fact_refs: Vec<(&str, &[u32])> = facts.iter().map(|f| ("E", f.as_slice())).collect();
        let a = left(&bs, 6, &fact_refs);
        let h = bijunctive_csp(&a, &b).unwrap().unwrap();
        for w in &facts {
            assert_ne!(h[w[0] as usize], h[w[1] as usize]);
        }
        // Odd cycle: not 2-colorable.
        let mut facts = Vec::new();
        for i in 0..5u32 {
            facts.push([i, (i + 1) % 5]);
        }
        let fact_refs: Vec<(&str, &[u32])> = facts.iter().map(|f| ("E", f.as_slice())).collect();
        let a = left(&bs, 5, &fact_refs);
        assert_eq!(bijunctive_csp(&a, &b).unwrap(), None);
    }

    #[test]
    fn bijunctive_matches_reference_on_random_instances() {
        // Majority-closed ternary relation + XOR.
        let mut tuples = vec![0b001u64, 0b010, 0b111];
        loop {
            let mut added = false;
            let snap = tuples.clone();
            for &a in &snap {
                for &b in &snap {
                    for &c in &snap {
                        let m = BooleanRelation::majority(a, b, c);
                        if !tuples.contains(&m) {
                            tuples.push(m);
                            added = true;
                        }
                    }
                }
            }
            if !added {
                break;
            }
        }
        let r3 = BooleanRelation::new(3, tuples).unwrap();
        let xor = BooleanRelation::new(2, vec![0b01, 0b10]).unwrap();
        let bs = BooleanStructure::new(vec![("R".into(), r3), ("X".into(), xor)]);
        let b = bs.to_structure();
        for seed in 0..25u64 {
            let a = generators::random_structure_over(b.vocabulary(), 6, 4, seed);
            let expected = homomorphism_exists(&a, &b);
            let got = bijunctive_csp(&a, &b).unwrap();
            assert_eq!(got.is_some(), expected, "seed {seed}");
            if let Some(h) = got {
                let map: Vec<_> = h.iter().map(|&v| Element::new(usize::from(v))).collect();
                assert!(is_homomorphism(&map, &a, &b), "seed {seed}");
            }
        }
    }

    #[test]
    fn class_mismatch_errors() {
        let xor = BooleanRelation::new(2, vec![0b01, 0b10]).unwrap();
        let bs = BooleanStructure::new(vec![("E".into(), xor)]);
        let b = bs.to_structure();
        let a = left(&bs, 2, &[("E", &[0, 1])]);
        assert!(horn_csp(&a, &b).is_err(), "XOR is not Horn");
        assert!(dual_horn_csp(&a, &b).is_err());
        assert!(bijunctive_csp(&a, &b).is_ok());
    }

    #[test]
    fn non_boolean_right_structure_errors() {
        let a = generators::directed_path(2);
        let b = generators::complete_graph(3);
        assert!(horn_csp(&a, &b).is_err());
    }

    #[test]
    fn trivial_solver() {
        let a = generators::directed_path(3);
        assert_eq!(trivial_csp(&a, false), vec![false; 3]);
        assert_eq!(trivial_csp(&a, true), vec![true; 3]);
    }

    #[test]
    fn isolated_elements_get_values() {
        let bs = implication_template();
        let b = bs.to_structure();
        // Universe 4 but only elements 0,1 constrained.
        let a = left(&bs, 4, &[("I", &[0, 1])]);
        let h = horn_csp(&a, &b).unwrap().unwrap();
        assert_eq!(h.len(), 4);
        let h = bijunctive_csp(&a, &b).unwrap().unwrap();
        assert_eq!(h.len(), 4);
    }
}

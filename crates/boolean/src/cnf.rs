//! CNF formulas: the propositional substrate for Theorems 3.2–3.3.
//!
//! Defining formulas δ_R for Horn, dual Horn, and bijunctive relations
//! are CNF; the uniform algorithm of Theorem 3.3 instantiates them per
//! tuple of the left structure and feeds the result to the matching SAT
//! solver.

use crate::relation::BooleanRelation;

/// A propositional literal over variable `var`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The variable index.
    pub var: u32,
    /// `true` for `p`, `false` for `¬p`.
    pub positive: bool,
}

impl Literal {
    /// The positive literal `p_var`.
    pub fn pos(var: u32) -> Self {
        Literal {
            var,
            positive: true,
        }
    }

    /// The negative literal `¬p_var`.
    pub fn neg(var: u32) -> Self {
        Literal {
            var,
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negated(self) -> Self {
        Literal {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Evaluates under an assignment.
    #[inline]
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var as usize] == self.positive
    }
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.positive {
            write!(f, "p{}", self.var)
        } else {
            write!(f, "¬p{}", self.var)
        }
    }
}

/// A clause: a disjunction of literals. The empty clause is `false`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Clause {
    /// The literals of the clause.
    pub literals: Vec<Literal>,
}

impl Clause {
    /// Creates a clause from literals.
    pub fn new(literals: Vec<Literal>) -> Self {
        Clause { literals }
    }

    /// Evaluates under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.literals.iter().any(|l| l.eval(assignment))
    }

    /// Number of positive literals.
    pub fn positive_count(&self) -> usize {
        self.literals.iter().filter(|l| l.positive).count()
    }

    /// Number of negative literals.
    pub fn negative_count(&self) -> usize {
        self.literals.len() - self.positive_count()
    }

    /// Whether the clause is a tautology (`p ∨ ¬p`).
    pub fn is_tautology(&self) -> bool {
        self.literals
            .iter()
            .any(|l| self.literals.contains(&l.negated()))
    }
}

impl std::fmt::Display for Clause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.literals.is_empty() {
            return f.write_str("⊥");
        }
        let parts: Vec<String> = self.literals.iter().map(|l| l.to_string()).collect();
        write!(f, "({})", parts.join(" ∨ "))
    }
}

/// A CNF formula over variables `0..num_vars`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CnfFormula {
    /// Number of variables.
    pub num_vars: usize,
    /// The clauses (conjunction).
    pub clauses: Vec<Clause>,
}

impl CnfFormula {
    /// Creates a formula; asserts all literals are in range.
    pub fn new(num_vars: usize, clauses: Vec<Clause>) -> Self {
        debug_assert!(clauses
            .iter()
            .all(|c| c.literals.iter().all(|l| (l.var as usize) < num_vars)));
        CnfFormula { num_vars, clauses }
    }

    /// Evaluates under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.clauses.iter().all(|c| c.eval(assignment))
    }

    /// Whether every clause has at most one positive literal.
    pub fn is_horn(&self) -> bool {
        self.clauses.iter().all(|c| c.positive_count() <= 1)
    }

    /// Whether every clause has at most one negative literal.
    pub fn is_dual_horn(&self) -> bool {
        self.clauses.iter().all(|c| c.negative_count() <= 1)
    }

    /// Whether every clause has at most two literals.
    pub fn is_2cnf(&self) -> bool {
        self.clauses.iter().all(|c| c.literals.len() <= 2)
    }

    /// Total number of literal occurrences (the formula's length).
    pub fn length(&self) -> usize {
        self.clauses.iter().map(|c| c.literals.len()).sum()
    }

    /// Enumerates all models (use only for small `num_vars`; intended
    /// for round-trip verification of defining formulas).
    pub fn models(&self) -> Vec<Vec<bool>> {
        assert!(
            self.num_vars <= 24,
            "model enumeration limited to 24 variables"
        );
        let mut out = Vec::new();
        let mut assignment = vec![false; self.num_vars];
        for bits in 0u64..(1u64 << self.num_vars) {
            for (i, slot) in assignment.iter_mut().enumerate() {
                *slot = bits & (1 << i) != 0;
            }
            if self.eval(&assignment) {
                out.push(assignment.clone());
            }
        }
        out
    }

    /// The models as a [`BooleanRelation`] over the formula's variables
    /// (position `i` = variable `i`).
    pub fn models_as_relation(&self) -> BooleanRelation {
        let masks: Vec<u64> = self
            .models()
            .into_iter()
            .map(|m| {
                m.iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
            })
            .collect();
        BooleanRelation::new(self.num_vars, masks).expect("models fit the declared variable count")
    }
}

impl std::fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.clauses.is_empty() {
            return f.write_str("⊤");
        }
        let parts: Vec<String> = self.clauses.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join(" ∧ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(lits: &[(u32, bool)]) -> Clause {
        Clause::new(
            lits.iter()
                .map(|&(v, p)| Literal {
                    var: v,
                    positive: p,
                })
                .collect(),
        )
    }

    #[test]
    fn literal_eval_and_negation() {
        let a = Literal::pos(0);
        assert!(a.eval(&[true]));
        assert!(!a.eval(&[false]));
        assert_eq!(a.negated(), Literal::neg(0));
        assert_eq!(a.negated().negated(), a);
    }

    #[test]
    fn clause_eval() {
        let c = clause(&[(0, false), (1, true)]); // ¬p0 ∨ p1
        assert!(c.eval(&[false, false]));
        assert!(c.eval(&[true, true]));
        assert!(!c.eval(&[true, false]));
        assert!(!Clause::default().eval(&[]), "empty clause is false");
    }

    #[test]
    fn shape_predicates() {
        let horn = CnfFormula::new(
            3,
            vec![
                clause(&[(0, false), (1, false), (2, true)]),
                clause(&[(0, true)]),
            ],
        );
        assert!(horn.is_horn());
        assert!(!horn.is_dual_horn());
        assert!(!horn.is_2cnf());

        let two = CnfFormula::new(2, vec![clause(&[(0, true), (1, true)])]);
        assert!(two.is_2cnf());
        assert!(two.is_dual_horn());
        assert!(!two.is_horn());
    }

    #[test]
    fn tautology_detection() {
        assert!(clause(&[(0, true), (0, false)]).is_tautology());
        assert!(!clause(&[(0, true), (1, false)]).is_tautology());
    }

    #[test]
    fn model_enumeration() {
        // p0 ∨ p1 has 3 models out of 4.
        let f = CnfFormula::new(2, vec![clause(&[(0, true), (1, true)])]);
        assert_eq!(f.models().len(), 3);
        let r = f.models_as_relation();
        assert_eq!(r.len(), 3);
        assert!(!r.contains(0b00));
        assert!(r.contains(0b01) && r.contains(0b10) && r.contains(0b11));
    }

    #[test]
    fn empty_formula_is_true() {
        let f = CnfFormula::new(2, vec![]);
        assert!(f.eval(&[false, false]));
        assert_eq!(f.models().len(), 4);
        assert_eq!(f.length(), 0);
    }

    #[test]
    fn display_forms() {
        let f = CnfFormula::new(2, vec![clause(&[(0, false), (1, true)])]);
        assert_eq!(f.to_string(), "(¬p0 ∨ p1)");
        assert_eq!(CnfFormula::new(0, vec![]).to_string(), "⊤");
        assert_eq!(Clause::default().to_string(), "⊥");
    }
}

//! Bit-packed Boolean relations and Boolean structures.
//!
//! A *Boolean relation* of arity `k` is a set of truth assignments to
//! `p₁,…,p_k` (paper §3.1); we pack each assignment into a `u64` mask
//! (bit `i` = value of position `i`, LSB-first), so the componentwise
//! operations Schaefer's closure criteria need — `∧`, `∨`, `⊕`,
//! majority — are single machine instructions.
//!
//! A *Boolean structure* is a structure with universe `{0, 1}`; it is
//! interchangeable with [`cqcs_structures::Structure`] via
//! [`BooleanStructure::to_structure`] / [`BooleanStructure::from_structure`].

use crate::error::{Error, Result};
use cqcs_structures::{Element, Structure, StructureBuilder, Vocabulary};
use std::sync::Arc;

/// Maximum supported arity of a bit-packed Boolean relation.
pub const MAX_ARITY: usize = 63;

/// A Boolean relation: a set of `arity`-bit masks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BooleanRelation {
    arity: usize,
    /// Sorted, deduplicated tuple masks.
    tuples: Vec<u64>,
}

impl BooleanRelation {
    /// Creates a relation from tuple masks, validating the arity bound
    /// and that no mask uses bits beyond the arity.
    pub fn new(arity: usize, mut tuples: Vec<u64>) -> Result<Self> {
        if arity > MAX_ARITY {
            return Err(Error::ArityTooLarge { arity });
        }
        let limit = 1u64 << arity;
        if let Some(&bad) = tuples.iter().find(|&&t| t >= limit) {
            return Err(Error::TupleOutOfRange { mask: bad, arity });
        }
        tuples.sort_unstable();
        tuples.dedup();
        Ok(BooleanRelation { arity, tuples })
    }

    /// Builds a relation from explicit bit vectors.
    pub fn from_bits(arity: usize, tuples: &[&[bool]]) -> Result<Self> {
        let masks = tuples
            .iter()
            .map(|bits| {
                assert_eq!(bits.len(), arity, "bit vector length must equal arity");
                bits.iter()
                    .enumerate()
                    .fold(0u64, |m, (i, &b)| if b { m | (1 << i) } else { m })
            })
            .collect();
        Self::new(arity, masks)
    }

    /// The arity.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Mask with the low `arity` bits set (the all-ones tuple).
    #[inline]
    pub fn ones_mask(&self) -> u64 {
        if self.arity == 64 {
            u64::MAX
        } else {
            (1u64 << self.arity) - 1
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, t: u64) -> bool {
        self.tuples.binary_search(&t).is_ok()
    }

    /// Iterates over tuple masks in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.tuples.iter().copied()
    }

    /// The value (`false`/`true`) at `pos` of tuple mask `t`.
    #[inline]
    pub fn bit(t: u64, pos: usize) -> bool {
        t & (1 << pos) != 0
    }

    /// Componentwise majority of three tuples (the bijunctive closure
    /// operation of Theorem 3.1).
    #[inline]
    pub fn majority(a: u64, b: u64, c: u64) -> u64 {
        (a & b) | (b & c) | (a & c)
    }

    /// Converts to a single-relation [`Structure`] view. Prefer
    /// [`BooleanStructure`] for multi-relation templates.
    pub fn to_structure(&self, name: &str) -> Structure {
        BooleanStructure::new(vec![(name.to_owned(), self.clone())]).to_structure()
    }
}

/// A named collection of Boolean relations — a structure over universe
/// `{0, 1}` in the paper's sense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BooleanStructure {
    relations: Vec<(String, BooleanRelation)>,
}

impl BooleanStructure {
    /// Creates a Boolean structure from named relations.
    pub fn new(relations: Vec<(String, BooleanRelation)>) -> Self {
        BooleanStructure { relations }
    }

    /// The named relations.
    pub fn relations(&self) -> &[(String, BooleanRelation)] {
        &self.relations
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether there are no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&BooleanRelation> {
        self.relations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r)
    }

    /// Renders as a [`Structure`] with universe `{0, 1}`: element 0 is
    /// `false`, element 1 is `true`; bit `i` of a mask becomes tuple
    /// position `i`.
    pub fn to_structure(&self) -> Structure {
        let mut voc = Vocabulary::new();
        for (name, rel) in &self.relations {
            voc.add(name, rel.arity())
                .expect("names are distinct by construction");
        }
        let voc = voc.into_shared();
        let mut b = StructureBuilder::new(Arc::clone(&voc), 2);
        let mut buf: Vec<Element> = Vec::new();
        for (name, rel) in &self.relations {
            let id = voc.lookup(name).expect("just added");
            for t in rel.iter() {
                buf.clear();
                buf.extend(
                    (0..rel.arity()).map(|i| Element(u32::from(BooleanRelation::bit(t, i)))),
                );
                b.add_tuple(id, &buf).expect("elements 0/1 are in range");
            }
        }
        b.finish()
    }

    /// Reads a Boolean structure back from a [`Structure`]; the universe
    /// must have exactly 2 elements (0 = false, 1 = true).
    pub fn from_structure(s: &Structure) -> Result<Self> {
        if s.universe() != 2 {
            return Err(Error::NotBoolean {
                universe: s.universe(),
            });
        }
        let mut relations = Vec::with_capacity(s.vocabulary().len());
        for (id, name, arity) in s.vocabulary().symbols() {
            if arity > MAX_ARITY {
                return Err(Error::ArityTooLarge { arity });
            }
            let masks: Vec<u64> = s
                .relation(id)
                .iter()
                .map(|tuple| {
                    tuple
                        .iter()
                        .enumerate()
                        .fold(0u64, |m, (i, e)| m | ((e.0 as u64) << i))
                })
                .collect();
            relations.push((name.to_owned(), BooleanRelation::new(arity, masks)?));
        }
        Ok(BooleanStructure { relations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        // Positive one-in-three 3-SAT relation (§2 of the paper):
        // {(1,0,0), (0,1,0), (0,0,1)} = masks {0b001, 0b010, 0b100}.
        let r = BooleanRelation::new(3, vec![0b001, 0b010, 0b100]).unwrap();
        assert_eq!(r.arity(), 3);
        assert_eq!(r.len(), 3);
        assert!(r.contains(0b010));
        assert!(!r.contains(0b011));
        assert_eq!(r.ones_mask(), 0b111);
    }

    #[test]
    fn from_bits_matches_masks() {
        let r = BooleanRelation::from_bits(2, &[&[false, true], &[true, false]]).unwrap();
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![0b01, 0b10]);
    }

    #[test]
    fn duplicates_collapse() {
        let r = BooleanRelation::new(2, vec![3, 3, 1]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn validation() {
        assert!(matches!(
            BooleanRelation::new(64, vec![]).unwrap_err(),
            Error::ArityTooLarge { .. }
        ));
        assert!(matches!(
            BooleanRelation::new(2, vec![0b100]).unwrap_err(),
            Error::TupleOutOfRange { .. }
        ));
    }

    #[test]
    fn majority_and_bit() {
        assert_eq!(BooleanRelation::majority(0b110, 0b101, 0b011), 0b111);
        assert_eq!(BooleanRelation::majority(0b110, 0b100, 0b000), 0b100);
        assert!(BooleanRelation::bit(0b10, 1));
        assert!(!BooleanRelation::bit(0b10, 0));
    }

    #[test]
    fn structure_roundtrip() {
        let bs = BooleanStructure::new(vec![
            (
                "R".into(),
                BooleanRelation::new(3, vec![0b001, 0b110]).unwrap(),
            ),
            ("P".into(), BooleanRelation::new(1, vec![0b1]).unwrap()),
        ]);
        let s = bs.to_structure();
        assert_eq!(s.universe(), 2);
        let back = BooleanStructure::from_structure(&s).unwrap();
        assert_eq!(back, bs);
    }

    #[test]
    fn structure_tuple_bit_order() {
        // Mask 0b001 of arity 3 = (1, 0, 0): position 0 is the LSB.
        let bs = BooleanStructure::new(vec![(
            "R".into(),
            BooleanRelation::new(3, vec![0b001]).unwrap(),
        )]);
        let s = bs.to_structure();
        let r = s.vocabulary().lookup("R").unwrap();
        let t: Vec<u32> = s.relation(r).tuple(0).iter().map(|e| e.0).collect();
        assert_eq!(t, vec![1, 0, 0]);
    }

    #[test]
    fn from_structure_rejects_non_boolean() {
        let s = cqcs_structures::generators::complete_graph(3);
        assert!(matches!(
            BooleanStructure::from_structure(&s).unwrap_err(),
            Error::NotBoolean { universe: 3 }
        ));
    }

    #[test]
    fn lookup_by_name() {
        let bs = BooleanStructure::new(vec![(
            "Q".into(),
            BooleanRelation::new(1, vec![0, 1]).unwrap(),
        )]);
        assert!(bs.relation("Q").is_some());
        assert!(bs.relation("Z").is_none());
    }
}

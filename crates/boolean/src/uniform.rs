//! The uniform polynomial-time algorithm for `CSP(SC)` (Theorem 3.3).
//!
//! Given a pair `(A, B)` with `B` a Boolean structure in Schaefer's
//! class, the paper's algorithm (1) recognizes which tractable case
//! applies (Theorem 3.1), (2) constructs the defining formulas δ_{Q'}
//! (Theorem 3.2), (3) instantiates them per tuple of `A` into a formula
//! φ_A over the elements of `A`, and (4) runs the matching linear-time
//! (Horn / dual Horn / 2-SAT) or cubic (affine) satisfiability
//! procedure. Truth assignments of φ_A are exactly the homomorphisms
//! `A → B`.
//!
//! [`solve_schaefer`] is the production dispatcher: it prefers the
//! *direct* quadratic algorithms of Theorem 3.4 ([`crate::direct`])
//! where they exist and falls back to the formula route only for the
//! affine case (where Gaussian elimination *is* the algorithm).
//! [`solve_schaefer_via_formulas`] is the literal Theorem 3.3 pipeline,
//! kept separate so the E3 experiment can measure both routes.

use crate::cnf::{Clause, CnfFormula, Literal};
use crate::direct;
use crate::error::{Error, Result};
use crate::formula_build;
use crate::gf2::LinearSystem;
use crate::horn_sat::solve_horn;
use crate::relation::BooleanStructure;
use crate::schaefer::{classify_structure, SchaeferClass, SchaeferSet};
use crate::two_sat::solve_2sat;
use cqcs_structures::Structure;

/// Classifies the right structure of an instance (must be Boolean).
pub fn schaefer_classes(b: &Structure) -> Result<SchaeferSet> {
    Ok(classify_structure(&BooleanStructure::from_structure(b)?))
}

/// Order in which applicable nontrivial classes are attempted by the
/// formula route: cheapest formula construction first.
const CLASS_PRIORITY: [SchaeferClass; 4] = [
    SchaeferClass::Bijunctive,
    SchaeferClass::Affine,
    SchaeferClass::Horn,
    SchaeferClass::DualHorn,
];

/// Solves `hom(A → B)` for a Schaefer template `B`, using the best
/// route per class (Theorem 3.4 direct algorithms; Gaussian elimination
/// for affine). Returns the homomorphism as a 0/1 map, or `None`.
///
/// Errors if `B` is not Boolean or not in Schaefer's class.
pub fn solve_schaefer(a: &Structure, b: &Structure) -> Result<Option<Vec<bool>>> {
    let classes = schaefer_classes(b)?;
    if classes.contains(SchaeferClass::ZeroValid) {
        return Ok(Some(direct::trivial_csp(a, false)));
    }
    if classes.contains(SchaeferClass::OneValid) {
        return Ok(Some(direct::trivial_csp(a, true)));
    }
    if classes.contains(SchaeferClass::Bijunctive) {
        return direct::bijunctive_csp(a, b);
    }
    if classes.contains(SchaeferClass::Horn) {
        return direct::horn_csp(a, b);
    }
    if classes.contains(SchaeferClass::DualHorn) {
        return direct::dual_horn_csp(a, b);
    }
    if classes.contains(SchaeferClass::Affine) {
        return solve_affine_route(a, b);
    }
    Err(Error::NotSchaefer)
}

/// The literal Theorem 3.3 pipeline: build defining formulas, construct
/// φ_A, run the per-class SAT procedure.
pub fn solve_schaefer_via_formulas(a: &Structure, b: &Structure) -> Result<Option<Vec<bool>>> {
    let classes = schaefer_classes(b)?;
    if classes.contains(SchaeferClass::ZeroValid) {
        return Ok(Some(direct::trivial_csp(a, false)));
    }
    if classes.contains(SchaeferClass::OneValid) {
        return Ok(Some(direct::trivial_csp(a, true)));
    }
    let Some(class) = CLASS_PRIORITY
        .iter()
        .copied()
        .find(|c| classes.contains(*c))
    else {
        return Err(Error::NotSchaefer);
    };
    match class {
        SchaeferClass::Affine => solve_affine_route(a, b),
        cnf_class => {
            let phi = build_phi(a, b, cnf_class)?;
            let model = match cnf_class {
                SchaeferClass::Bijunctive => solve_2sat(&phi)?,
                SchaeferClass::Horn => solve_horn(&phi)?,
                SchaeferClass::DualHorn => {
                    // Dual Horn: flip every literal, solve Horn, flip
                    // the model back.
                    let flipped = CnfFormula::new(
                        phi.num_vars,
                        phi.clauses
                            .iter()
                            .map(|c| Clause::new(c.literals.iter().map(|l| l.negated()).collect()))
                            .collect(),
                    );
                    solve_horn(&flipped)?.map(|m| m.into_iter().map(|v| !v).collect())
                }
                _ => unreachable!("affine handled above"),
            };
            Ok(model)
        }
    }
}

/// Builds φ_A = ⋀_Q ⋀_{t ∈ Q^A} δ_{Q'}(t) for a CNF-definable class.
fn build_phi(a: &Structure, b: &Structure, class: SchaeferClass) -> Result<CnfFormula> {
    let bs = BooleanStructure::from_structure(b)?;
    let n = a.universe();
    let mut clauses: Vec<Clause> = Vec::new();
    for (idx, (_, rel)) in bs.relations().iter().enumerate() {
        let r = cqcs_structures::RelId::from_index(idx);
        let ra = a.relation(r);
        if ra.is_empty() {
            continue;
        }
        if rel.arity() == 0 {
            // 0-ary: A asserts the fact; B must have it.
            if rel.is_empty() {
                clauses.push(Clause::default());
            }
            continue;
        }
        let delta = match class {
            SchaeferClass::Bijunctive => formula_build::defining_bijunctive(rel),
            SchaeferClass::Horn => formula_build::defining_horn(rel)?,
            SchaeferClass::DualHorn => formula_build::defining_dual_horn(rel)?,
            _ => unreachable!("build_phi is for CNF classes"),
        };
        for t in ra.iter() {
            for c in &delta.clauses {
                let lits: Vec<Literal> = c
                    .literals
                    .iter()
                    .map(|l| Literal {
                        var: t[l.var as usize].0,
                        positive: l.positive,
                    })
                    .collect();
                let cl = Clause::new(lits);
                if !cl.is_tautology() {
                    clauses.push(cl);
                }
            }
        }
    }
    Ok(CnfFormula::new(n, clauses))
}

/// The affine route: instantiate each relation's defining equations per
/// tuple (with GF(2) cancellation of repeated elements) and solve by
/// Gaussian elimination.
fn solve_affine_route(a: &Structure, b: &Structure) -> Result<Option<Vec<bool>>> {
    let bs = BooleanStructure::from_structure(b)?;
    let n = a.universe();
    let mut sys = LinearSystem::new(n);
    for (idx, (_, rel)) in bs.relations().iter().enumerate() {
        let r = cqcs_structures::RelId::from_index(idx);
        let ra = a.relation(r);
        if ra.is_empty() {
            continue;
        }
        if rel.arity() == 0 {
            if rel.is_empty() {
                sys.add_equation([], true); // 0 = 1
            }
            continue;
        }
        let delta = formula_build::defining_affine(rel);
        for t in ra.iter() {
            for eq in &delta.equations {
                // Substitute x_{t[i]} for p_i; repeated elements cancel
                // pairwise over GF(2).
                let mut parity = vec![false; n];
                for i in eq.vars.iter() {
                    let e = t[i].index();
                    parity[e] = !parity[e];
                }
                sys.add_equation((0..n).filter(|&e| parity[e]), eq.rhs);
            }
        }
    }
    Ok(sys.solve())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::BooleanRelation;
    use cqcs_structures::generators;
    use cqcs_structures::homomorphism::{homomorphism_exists, is_homomorphism};
    use cqcs_structures::{Element, StructureBuilder};
    use std::sync::Arc;

    fn check_both_routes(a: &Structure, b: &Structure) {
        let expected = homomorphism_exists(a, b);
        for (name, got) in [
            ("direct", solve_schaefer(a, b).unwrap()),
            ("formulas", solve_schaefer_via_formulas(a, b).unwrap()),
        ] {
            assert_eq!(
                got.is_some(),
                expected,
                "{name} route disagrees with reference"
            );
            if let Some(h) = got {
                let map: Vec<Element> = h.iter().map(|&v| Element::new(usize::from(v))).collect();
                assert!(is_homomorphism(&map, a, b), "{name} returned a non-hom");
            }
        }
    }

    fn template(rels: Vec<(&str, BooleanRelation)>) -> Structure {
        BooleanStructure::new(rels.into_iter().map(|(n, r)| (n.to_owned(), r)).collect())
            .to_structure()
    }

    #[test]
    fn trivial_classes_shortcut() {
        // 0-valid template: R = {000, 101}.
        let b = template(vec![(
            "R",
            BooleanRelation::new(3, vec![0b000, 0b101]).unwrap(),
        )]);
        let a = generators::random_structure_over(b.vocabulary(), 5, 6, 1);
        let h = solve_schaefer(&a, &b).unwrap().unwrap();
        assert!(h.iter().all(|&v| !v), "constant-0 homomorphism");
        check_both_routes(&a, &b);
    }

    #[test]
    fn horn_template_both_routes() {
        let b = template(vec![
            (
                "R",
                BooleanRelation::new(3, vec![0b000, 0b001, 0b011, 0b111]).unwrap(),
            ),
            ("U", BooleanRelation::new(1, vec![0b1]).unwrap()),
        ]);
        for seed in 0..10 {
            let a = generators::random_structure_over(b.vocabulary(), 6, 5, seed);
            check_both_routes(&a, &b);
        }
    }

    #[test]
    fn bijunctive_template_both_routes() {
        let b = template(vec![(
            "E",
            BooleanRelation::new(2, vec![0b01, 0b10]).unwrap(),
        )]);
        for n in [4, 5, 6, 7] {
            let a = generators::undirected_cycle(n);
            // Rename E so the vocabularies match by content.
            let mut builder = StructureBuilder::new(Arc::clone(b.vocabulary()), n);
            let e_src = a.vocabulary().lookup("E").unwrap();
            for t in a.relation(e_src).iter() {
                builder.add_fact("E", &[t[0].0, t[1].0]).unwrap();
            }
            let a = builder.finish();
            check_both_routes(&a, &b);
        }
    }

    #[test]
    fn affine_template_both_routes() {
        // Even parity relation (x⊕y⊕z = 0) plus XOR.
        let b = template(vec![
            (
                "P",
                BooleanRelation::new(3, vec![0b000, 0b011, 0b101, 0b110]).unwrap(),
            ),
            ("X", BooleanRelation::new(2, vec![0b01, 0b10]).unwrap()),
        ]);
        // This template is both affine and bijunctive? P is affine but
        // not bijunctive (maj(011,101,110) = 111 ∉ P), so the affine
        // route is forced.
        let classes = schaefer_classes(&b).unwrap();
        assert!(classes.contains(SchaeferClass::Affine));
        assert!(!classes.contains(SchaeferClass::Bijunctive));
        for seed in 0..10 {
            let a = generators::random_structure_over(b.vocabulary(), 6, 4, seed);
            check_both_routes(&a, &b);
        }
    }

    #[test]
    fn dual_horn_template_both_routes() {
        let b = template(vec![(
            "R",
            BooleanRelation::new(3, vec![0b100, 0b110, 0b101, 0b111]).unwrap(),
        )]);
        let classes = schaefer_classes(&b).unwrap();
        assert!(classes.contains(SchaeferClass::DualHorn));
        for seed in 0..10 {
            let a = generators::random_structure_over(b.vocabulary(), 6, 5, seed);
            check_both_routes(&a, &b);
        }
    }

    #[test]
    fn non_schaefer_template_errors() {
        // Positive one-in-three: not Schaefer.
        let b = template(vec![(
            "R",
            BooleanRelation::new(3, vec![0b001, 0b010, 0b100]).unwrap(),
        )]);
        let a = generators::random_structure_over(b.vocabulary(), 3, 2, 0);
        assert!(matches!(
            solve_schaefer(&a, &b).unwrap_err(),
            Error::NotSchaefer
        ));
        assert!(matches!(
            solve_schaefer_via_formulas(&a, &b).unwrap_err(),
            Error::NotSchaefer
        ));
    }

    #[test]
    fn empty_b_relation_blocks_when_used() {
        // R' empty, A uses R → no hom; A doesn't use R → hom exists.
        let b = template(vec![
            ("R", BooleanRelation::new(2, vec![]).unwrap()),
            ("U", BooleanRelation::new(1, vec![0b0]).unwrap()),
        ]);
        let mut builder = StructureBuilder::new(Arc::clone(b.vocabulary()), 2);
        builder.add_fact("U", &[0]).unwrap();
        let a_without = builder.clone().finish();
        builder.add_fact("R", &[0, 1]).unwrap();
        let a_with = builder.finish();
        check_both_routes(&a_without, &b);
        check_both_routes(&a_with, &b);
        assert!(solve_schaefer(&a_with, &b).unwrap().is_none());
        assert!(solve_schaefer(&a_without, &b).unwrap().is_some());
    }

    #[test]
    fn repeated_elements_in_tuples() {
        // Tuples like R(x, x, y) exercise literal collapsing and GF(2)
        // cancellation.
        let b = template(vec![(
            "P",
            BooleanRelation::new(3, vec![0b000, 0b011, 0b101, 0b110]).unwrap(),
        )]);
        let mut builder = StructureBuilder::new(Arc::clone(b.vocabulary()), 2);
        builder.add_fact("P", &[0, 0, 1]).unwrap();
        let a = builder.finish();
        check_both_routes(&a, &b);
    }
}

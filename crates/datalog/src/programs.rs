//! Textbook programs used across tests, examples, and benches.

use crate::ast::Program;
use crate::parser::parse_program;

/// The paper's §4.1 example: non-2-colorability in 4-Datalog, via the
/// existence of an odd cycle.
///
/// ```text
/// P(X, Y) :- E(X, Y)
/// P(X, Y) :- P(X, Z), E(Z, W), E(W, Y)
/// Q :- P(X, X)
/// ```
pub fn non_two_colorability_4datalog() -> Program {
    parse_program(
        "
        P(X, Y) :- E(X, Y).
        P(X, Y) :- P(X, Z), E(Z, W), E(W, Y).
        Q :- P(X, X).
        ",
        "Q",
    )
    .expect("static program parses")
}

/// Non-2-colorability in 3-Datalog (odd/even path split) — witnessing
/// that the property's Datalog width is at most 3.
pub fn non_two_colorability_3datalog() -> Program {
    parse_program(
        "
        Odd(X, Y) :- E(X, Y).
        Even(X, Y) :- Odd(X, Z), E(Z, Y).
        Odd(X, Y) :- Even(X, Z), E(Z, Y).
        Q :- Odd(X, X).
        ",
        "Q",
    )
    .expect("static program parses")
}

/// Plain transitive closure with a cycle goal (used as an evaluation
/// workload).
pub fn cycle_detection() -> Program {
    parse_program(
        "
        P(X, Y) :- E(X, Y).
        P(X, Y) :- P(X, Z), E(Z, Y).
        Q :- P(X, X).
        ",
        "Q",
    )
    .expect("static program parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_naive, eval_semi_naive};
    use crate::validate::datalog_width;
    use cqcs_structures::generators;
    use cqcs_structures::homomorphism::homomorphism_exists;

    #[test]
    fn non_two_colorability_agrees_with_hom() {
        let k2 = generators::complete_graph(2);
        for program in [
            non_two_colorability_4datalog(),
            non_two_colorability_3datalog(),
        ] {
            for n in [3, 4, 5, 6, 7, 8] {
                let g = generators::undirected_cycle(n);
                let expected = !homomorphism_exists(&g, &k2);
                assert_eq!(eval_semi_naive(&program, &g).goal_derived, expected, "C{n}");
            }
            // Random graphs too.
            for seed in 0..8u64 {
                let g = generators::random_graph_nm(7, 8, seed);
                let expected = !homomorphism_exists(&g, &k2);
                assert_eq!(
                    eval_naive(&program, &g).goal_derived,
                    expected,
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn widths_as_documented() {
        assert_eq!(datalog_width(&non_two_colorability_4datalog()), 4);
        assert_eq!(datalog_width(&non_two_colorability_3datalog()), 3);
        assert_eq!(datalog_width(&cycle_detection()), 3);
    }

    #[test]
    fn cycle_detection_works() {
        let program = cycle_detection();
        assert!(eval_semi_naive(&program, &generators::directed_cycle(5)).goal_derived);
        assert!(!eval_semi_naive(&program, &generators::directed_path(5)).goal_derived);
    }
}

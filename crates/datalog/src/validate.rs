//! k-Datalog validation (paper §4.1).
//!
//! "For every positive integer k, k-Datalog is the collection of all
//! Datalog programs in which the body of every rule has at most k
//! distinct variables and the head of every rule has at most k
//! variables (the variables of the body may be different from the
//! variables of the head)."

use crate::ast::{Program, Rule};

/// The k-Datalog width of one rule: the larger of its body's and its
/// head's distinct-variable counts.
pub fn rule_width(rule: &Rule) -> usize {
    rule.body_vars().len().max(rule.head_vars().len())
}

/// The width of a program: the maximum rule width (0 for an empty
/// program).
pub fn datalog_width(program: &Program) -> usize {
    program.rules.iter().map(rule_width).max().unwrap_or(0)
}

/// Whether the program is in k-Datalog.
pub fn is_k_datalog(program: &Program, k: usize) -> bool {
    datalog_width(program) <= k
}

/// Whether every rule is range restricted (all head variables occur in
/// the body). Programs failing this still evaluate under the engine's
/// active-domain semantics; the flag documents which convention a
/// program needs.
pub fn is_range_restricted(program: &Program) -> bool {
    program.rules.iter().all(Rule::is_range_restricted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn non_two_colorability_is_4_datalog() {
        // The paper's §4.1 example: bodies have ≤ 4 distinct variables.
        let src = "
            P(X, Y) :- E(X, Y).
            P(X, Y) :- P(X, Z), E(Z, W), E(W, Y).
            Q :- P(X, X).
        ";
        let p = parse_program(src, "Q").unwrap();
        assert_eq!(datalog_width(&p), 4);
        assert!(is_k_datalog(&p, 4));
        assert!(!is_k_datalog(&p, 3));
        assert!(is_range_restricted(&p));
    }

    #[test]
    fn three_variable_variant() {
        // The odd/even split brings non-2-colorability into 3-Datalog.
        let src = "
            Odd(X, Y) :- E(X, Y).
            Even(X, Y) :- Odd(X, Z), E(Z, Y).
            Odd(X, Y) :- Even(X, Z), E(Z, Y).
            Q :- Odd(X, X).
        ";
        let p = parse_program(src, "Q").unwrap();
        assert_eq!(datalog_width(&p), 3);
    }

    #[test]
    fn head_variables_counted_separately() {
        // Body has 1 distinct variable, head has 2 → width 2.
        let src = "T(X, Y) :- E(X, X).";
        let p = parse_program(src, "T").unwrap();
        assert_eq!(datalog_width(&p), 2);
        assert!(!is_range_restricted(&p));
    }

    #[test]
    fn empty_program() {
        let p = parse_program("", "Q").unwrap();
        assert_eq!(datalog_width(&p), 0);
        assert!(is_k_datalog(&p, 0));
    }
}

//! A hand-rolled parser for the usual Datalog rule syntax.
//!
//! ```text
//! P(X, Y) :- E(X, Y).
//! P(X, Y) :- P(X, Z), E(Z, W), E(W, Y).
//! Q :- P(X, X).
//! ```
//!
//! Identifiers are alphanumeric (plus `_`); every argument is a
//! variable (pure Datalog, no constants — the paper's programs need
//! none). `%` starts a line comment. The goal predicate is chosen by
//! the caller.

use crate::ast::{Program, ProgramBuilder};

/// A parse error with a (line, column) position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Turnstile,
    Dot,
    Eof,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            column: self.col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
        match self.peek() {
            None => Ok(Token::Eof),
            Some(b'(') => {
                self.bump();
                Ok(Token::LParen)
            }
            Some(b')') => {
                self.bump();
                Ok(Token::RParen)
            }
            Some(b',') => {
                self.bump();
                Ok(Token::Comma)
            }
            Some(b'.') => {
                self.bump();
                Ok(Token::Dot)
            }
            Some(b':') => {
                self.bump();
                if self.peek() == Some(b'-') {
                    self.bump();
                    Ok(Token::Turnstile)
                } else {
                    Err(self.error("expected `-` after `:`"))
                }
            }
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
                let mut ident = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        ident.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(Token::Ident(ident))
            }
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
        }
    }
}

/// A raw parsed atom: predicate name and variable names.
type RawAtom = (String, Vec<String>);

fn parse_atom(lex: &mut Lexer<'_>, first: Token) -> Result<RawAtom, ParseError> {
    let Token::Ident(pred) = first else {
        return Err(lex.error("expected a predicate name"));
    };
    let mut args = Vec::new();
    // Peek for an argument list by trying the next token only when `(`.
    let save = (lex.pos, lex.line, lex.col);
    let t = lex.next_token()?;
    if t != Token::LParen {
        (lex.pos, lex.line, lex.col) = save;
        return Ok((pred, args));
    }
    loop {
        match lex.next_token()? {
            Token::Ident(v) => args.push(v),
            Token::RParen if args.is_empty() => break,
            _ => return Err(lex.error("expected a variable name")),
        }
        match lex.next_token()? {
            Token::Comma => {}
            Token::RParen => break,
            _ => return Err(lex.error("expected `,` or `)`")),
        }
    }
    Ok((pred, args))
}

/// Parses a program; `goal` names the goal predicate.
pub fn parse_program(src: &str, goal: &str) -> Result<Program, ParseError> {
    let mut lex = Lexer::new(src);
    let mut builder = ProgramBuilder::new();
    loop {
        let t = lex.next_token()?;
        if t == Token::Eof {
            break;
        }
        let head = parse_atom(&mut lex, t)?;
        let mut body: Vec<RawAtom> = Vec::new();
        match lex.next_token()? {
            Token::Dot => {}
            Token::Turnstile => loop {
                let t = lex.next_token()?;
                if t == Token::Dot && body.is_empty() {
                    break; // `H :- .` — explicit empty body
                }
                body.push(parse_atom(&mut lex, t)?);
                match lex.next_token()? {
                    Token::Comma => {}
                    Token::Dot => break,
                    _ => return Err(lex.error("expected `,` or `.`")),
                }
            },
            _ => return Err(lex.error("expected `:-` or `.` after the head")),
        }
        let head_args: Vec<&str> = head.1.iter().map(String::as_str).collect();
        let body_refs: Vec<(&str, Vec<&str>)> = body
            .iter()
            .map(|(p, args)| (p.as_str(), args.iter().map(String::as_str).collect()))
            .collect();
        let body_slices: Vec<(&str, &[&str])> =
            body_refs.iter().map(|(p, a)| (*p, a.as_slice())).collect();
        builder.rule((head.0.as_str(), &head_args), &body_slices);
    }
    Ok(builder.finish(goal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_semi_naive;
    use cqcs_structures::generators;

    #[test]
    fn parses_transitive_closure() {
        let src = "
            % transitive closure with cycle goal
            P(X, Y) :- E(X, Y).
            P(X, Y) :- P(X, Z), E(Z, Y).
            Q :- P(X, X).
        ";
        let p = parse_program(src, "Q").unwrap();
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.pred_arity(p.pred("P").unwrap()), 2);
        assert!(eval_semi_naive(&p, &generators::directed_cycle(4)).goal_derived);
        assert!(!eval_semi_naive(&p, &generators::directed_path(4)).goal_derived);
    }

    #[test]
    fn zero_ary_atoms() {
        let p = parse_program("Q :- E(X, Y). R :- Q.", "R").unwrap();
        assert_eq!(p.pred_arity(p.pred("Q").unwrap()), 0);
        assert!(eval_semi_naive(&p, &generators::directed_path(2)).goal_derived);
    }

    #[test]
    fn facts_without_body() {
        let p = parse_program("T(X).", "T").unwrap();
        assert_eq!(p.rules[0].body.len(), 0);
        let r = eval_semi_naive(&p, &generators::directed_path(3));
        assert!(r.goal_derived);
    }

    #[test]
    fn error_positions() {
        let err = parse_program("P(X) :- E(X,).", "P").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("variable"));
        let err = parse_program("P(X) : E(X).", "P").unwrap_err();
        assert!(err.message.contains('-'));
        let err = parse_program("P(X) E(X).", "P").unwrap_err();
        assert!(err.to_string().contains(":-"));
    }

    #[test]
    fn comments_and_whitespace() {
        let src = "% leading comment\nP(X)\n  :- % inline\n  E(X, X).";
        let p = parse_program(src, "P").unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn unexpected_character() {
        let err = parse_program("P(X) :- E(X) & F(X).", "P").unwrap_err();
        assert!(err.message.contains('&'));
    }
}

//! Datalog abstract syntax: programs, rules, atoms.
//!
//! Predicates are interned program-wide; variables are interned
//! per-rule (a rule's variables are scoped to it). IDB predicates are
//! those occurring in rule heads; everything else is EDB and is bound
//! to the relations of an input [`cqcs_structures::Structure`] by name
//! at evaluation time.

use std::collections::HashMap;

/// Program-wide predicate handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

impl PredId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Rule-scoped variable handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An atom `P(v₁, …, v_r)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The predicate.
    pub pred: PredId,
    /// The argument variables.
    pub args: Vec<VarId>,
}

/// A rule `head :- body₁, …, body_m` (empty body = unconditional,
/// deriving the head for every active-domain assignment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head atom (must be an IDB predicate).
    pub head: Atom,
    /// The body atoms.
    pub body: Vec<Atom>,
    /// Number of distinct variables in the rule.
    pub num_vars: usize,
}

impl Rule {
    /// Distinct variables occurring in the body.
    pub fn body_vars(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self
            .body
            .iter()
            .flat_map(|a| a.args.iter().copied())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Distinct variables occurring in the head.
    pub fn head_vars(&self) -> Vec<VarId> {
        let mut vars = self.head.args.clone();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Whether every head variable occurs in the body (range
    /// restricted / "safe" in the classical sense).
    pub fn is_range_restricted(&self) -> bool {
        let body = self.body_vars();
        self.head_vars().iter().all(|v| body.contains(v))
    }
}

/// A Datalog program.
#[derive(Debug, Clone)]
pub struct Program {
    pred_names: Vec<String>,
    pred_arities: Vec<usize>,
    is_idb: Vec<bool>,
    /// The rules.
    pub rules: Vec<Rule>,
    /// The goal predicate.
    pub goal: PredId,
}

impl Program {
    /// Predicate name.
    pub fn pred_name(&self, p: PredId) -> &str {
        &self.pred_names[p.index()]
    }

    /// Predicate arity.
    pub fn pred_arity(&self, p: PredId) -> usize {
        self.pred_arities[p.index()]
    }

    /// Whether the predicate occurs in some rule head.
    pub fn is_idb(&self, p: PredId) -> bool {
        self.is_idb[p.index()]
    }

    /// Number of predicates.
    pub fn num_preds(&self) -> usize {
        self.pred_names.len()
    }

    /// Looks up a predicate by name.
    pub fn pred(&self, name: &str) -> Option<PredId> {
        self.pred_names
            .iter()
            .position(|n| n == name)
            .map(|i| PredId(i as u32))
    }

    /// The EDB predicates (inputs), in id order.
    pub fn edb_preds(&self) -> impl Iterator<Item = PredId> + '_ {
        (0..self.num_preds() as u32)
            .map(PredId)
            .filter(|p| !self.is_idb(*p))
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for rule in &self.rules {
            let fmt_atom = |a: &Atom| -> String {
                if a.args.is_empty() {
                    self.pred_name(a.pred).to_owned()
                } else {
                    format!(
                        "{}({})",
                        self.pred_name(a.pred),
                        a.args
                            .iter()
                            .map(|v| format!("V{}", v.0))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            };
            write!(f, "{} :- ", fmt_atom(&rule.head))?;
            let body: Vec<String> = rule.body.iter().map(fmt_atom).collect();
            writeln!(f, "{}.", body.join(", "))?;
        }
        Ok(())
    }
}

/// Incremental program construction with string-named predicates and
/// variables.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    pred_names: Vec<String>,
    pred_arities: Vec<usize>,
    by_name: HashMap<String, PredId>,
    rules: Vec<Rule>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a predicate (name, arity); re-declaration with a
    /// different arity panics (program construction is a programming
    /// act, not user input).
    pub fn pred(&mut self, name: &str, arity: usize) -> PredId {
        if let Some(&p) = self.by_name.get(name) {
            assert_eq!(
                self.pred_arities[p.index()],
                arity,
                "predicate `{name}` re-declared with different arity"
            );
            return p;
        }
        let p = PredId(self.pred_names.len() as u32);
        self.pred_names.push(name.to_owned());
        self.pred_arities.push(arity);
        self.by_name.insert(name.to_owned(), p);
        p
    }

    /// Adds a rule from (pred, variable names) tuples; the first entry
    /// is the head.
    pub fn rule(&mut self, head: (&str, &[&str]), body: &[(&str, &[&str])]) {
        let mut vars: HashMap<String, VarId> = HashMap::new();
        let mut intern_atom = |b: &mut Self, pred: &str, args: &[&str]| -> Atom {
            let p = b.pred(pred, args.len());
            let args = args
                .iter()
                .map(|a| {
                    let next = vars.len() as u32;
                    *vars.entry((*a).to_owned()).or_insert(VarId(next))
                })
                .collect();
            Atom { pred: p, args }
        };
        let head_atom = intern_atom(self, head.0, head.1);
        let body_atoms: Vec<Atom> = body.iter().map(|(p, a)| intern_atom(self, p, a)).collect();
        self.rules.push(Rule {
            head: head_atom,
            body: body_atoms,
            num_vars: vars.len(),
        });
    }

    /// Adds a pre-built rule (used by the canonical-program generator).
    pub fn raw_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Finalizes with the named goal predicate (interned 0-ary if new).
    pub fn finish(mut self, goal: &str) -> Program {
        let goal = self.by_name.get(goal).copied().unwrap_or_else(|| {
            let p = PredId(self.pred_names.len() as u32);
            self.pred_names.push(goal.to_owned());
            self.pred_arities.push(0);
            p
        });
        let mut is_idb = vec![false; self.pred_names.len()];
        for r in &self.rules {
            is_idb[r.head.pred.index()] = true;
        }
        Program {
            pred_names: self.pred_names,
            pred_arities: self.pred_arities,
            is_idb,
            rules: self.rules,
            goal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.rule(("P", &["X", "Y"]), &[("E", &["X", "Y"])]);
        b.rule(
            ("P", &["X", "Y"]),
            &[("P", &["X", "Z"]), ("E", &["Z", "Y"])],
        );
        b.rule(("Q", &[]), &[("P", &["X", "X"])]);
        b.finish("Q")
    }

    #[test]
    fn build_and_introspect() {
        let p = tc_program();
        assert_eq!(p.num_preds(), 3);
        let e = p.pred("E").unwrap();
        let pp = p.pred("P").unwrap();
        let q = p.pred("Q").unwrap();
        assert!(!p.is_idb(e));
        assert!(p.is_idb(pp) && p.is_idb(q));
        assert_eq!(p.pred_arity(pp), 2);
        assert_eq!(p.pred_arity(q), 0);
        assert_eq!(p.goal, q);
        assert_eq!(p.edb_preds().collect::<Vec<_>>(), vec![e]);
    }

    #[test]
    fn rule_variable_interning() {
        let p = tc_program();
        let r = &p.rules[1]; // P(X,Y) :- P(X,Z), E(Z,Y).
        assert_eq!(r.num_vars, 3);
        assert_eq!(r.head.args[0], r.body[0].args[0], "X shared");
        assert_eq!(r.body[0].args[1], r.body[1].args[0], "Z shared");
        assert!(r.is_range_restricted());
    }

    #[test]
    fn unsafe_rule_detected() {
        let mut b = ProgramBuilder::new();
        b.rule(("T", &["X", "Y"]), &[("E", &["X", "X"])]);
        let p = b.finish("T");
        assert!(!p.rules[0].is_range_restricted(), "Y not in body");
    }

    #[test]
    fn display_roundtrippable_shape() {
        let p = tc_program();
        let text = p.to_string();
        assert!(text.contains(":-"));
        assert!(text.contains('P'));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn arity_conflict_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut b = ProgramBuilder::new();
            b.rule(("P", &["X"]), &[("E", &["X", "X"])]);
            b.rule(("P", &["X", "Y"]), &[("E", &["X", "Y"])]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn goal_interned_when_missing() {
        let mut b = ProgramBuilder::new();
        b.rule(("P", &["X"]), &[("E", &["X", "X"])]);
        let p = b.finish("Goal");
        assert_eq!(p.pred_arity(p.goal), 0);
        assert_eq!(p.pred_name(p.goal), "Goal");
    }
}

//! Incremental Datalog maintenance over [`StructureDelta`] streams.
//!
//! [`IncrementalEval`] keeps the least fixpoint of a program over a
//! changing EDB up to date without re-running
//! [`eval_semi_naive`](crate::eval::eval_semi_naive) from scratch:
//!
//! * predicates are **stratified** by the SCC condensation of the rule
//!   dependency graph (body pred → head pred), processed in topological
//!   order;
//! * **non-recursive** predicates are maintained by **counting**: each
//!   fact carries its number of rule derivations, and a delta
//!   telescopes every rule body through signed per-position joins
//!   (`Σᵢ new₁..ᵢ₋₁ · δᵢ · oldᵢ₊₁..ₘ`), so a fact dies exactly when
//!   its count reaches zero;
//! * **recursive** strata are maintained **DRed**-style
//!   (delete-and-re-derive): deletions over-propagate semi-naively
//!   against the old state, the over-deleted facts that survive are
//!   re-derived from the post-deletion state, and insertions continue
//!   the semi-naive fixpoint;
//! * each update runs a **deletion sweep** then an **addition sweep**
//!   over the strata, so every sweep sees single-signed deltas;
//! * universe growth falls back to full recomputation — head-only
//!   variables range over the active domain, so growing the universe
//!   changes derivations that no EDB-fact delta describes.
//!
//! The maintained facts are pinned equal to a from-scratch
//! [`eval_semi_naive`](crate::eval::eval_semi_naive) on the post-delta
//! structure (unit tests here, property tests in the facade suite).
//! [`DatalogWatch`] wraps the maintainer into a register-once /
//! feed-deltas / notify-on-goal-flip surface — the Datalog side of the
//! delta-solve pipeline.

use crate::ast::{PredId, Program};
use crate::eval::{derive, edb_store, AtomSource, FactStore};
use cqcs_structures::{Structure, StructureDelta};
use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;

/// One SCC of the predicate dependency graph, with the rules whose
/// heads it owns.
#[derive(Debug)]
struct Stratum {
    preds: Vec<PredId>,
    /// Indices into `program.rules`.
    rules: Vec<usize>,
    /// Mutual recursion (SCC size > 1) or direct self-recursion.
    recursive: bool,
}

/// Update-path counters, exposed so tests and benches can assert the
/// incremental path actually ran.
#[derive(Debug, Default, Clone, Copy)]
pub struct IncStats {
    /// Deltas absorbed by the counting/DRed path.
    pub incremental_updates: usize,
    /// Deltas that forced a from-scratch recomputation.
    pub full_recomputes: usize,
    /// Total rule-body join attempts, same convention as
    /// [`EvalResult::join_work`](crate::eval::EvalResult::join_work).
    pub join_work: usize,
}

/// Incrementally maintained least fixpoint of a Datalog program. See
/// the [module docs](self).
#[derive(Debug)]
pub struct IncrementalEval {
    program: Program,
    strata: Vec<Stratum>,
    universe: u32,
    edb: FactStore,
    idb: FactStore,
    /// Derivation counts, kept for non-recursive predicates only.
    counts: HashMap<PredId, HashMap<Vec<u32>, u64>>,
    stats: IncStats,
}

fn empty_set() -> &'static HashSet<Vec<u32>> {
    static EMPTY: OnceLock<HashSet<Vec<u32>>> = OnceLock::new();
    EMPTY.get_or_init(HashSet::new)
}

/// The current fact set of `p`, whichever store holds it.
fn full_set<'a>(edb: &'a FactStore, idb: &'a FactStore, p: PredId) -> &'a HashSet<Vec<u32>> {
    match edb.get(&p).or_else(|| idb.get(&p)) {
        Some(s) => s,
        None => empty_set(),
    }
}

/// Tarjan's SCC algorithm (iterative); emits components in reverse
/// topological order of the condensation.
fn tarjan(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;
    for s in 0..n {
        if index[s] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(s, 0)];
        index[s] = counter;
        low[s] = counter;
        counter += 1;
        stack.push(s);
        on_stack[s] = true;
        while let Some(frame) = call.last_mut() {
            let (v, ci) = *frame;
            if ci < adj[v].len() {
                frame.1 += 1;
                let w = adj[v][ci];
                if index[w] == usize::MAX {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

/// SCC-condenses the body→head dependency graph into topologically
/// ordered strata; components without rules (the EDB predicates) are
/// dropped.
fn stratify(program: &Program) -> Vec<Stratum> {
    let n = program.num_preds();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for rule in &program.rules {
        for a in &rule.body {
            adj[a.pred.index()].push(rule.head.pred.index());
        }
    }
    for targets in &mut adj {
        targets.sort_unstable();
        targets.dedup();
    }
    let order: Vec<Vec<usize>> = tarjan(n, &adj).into_iter().rev().collect();
    let mut comp = vec![0usize; n];
    for (i, c) in order.iter().enumerate() {
        for &p in c {
            comp[p] = i;
        }
    }
    let mut strata = Vec::new();
    for (i, c) in order.iter().enumerate() {
        let rules: Vec<usize> = program
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| comp[r.head.pred.index()] == i)
            .map(|(j, _)| j)
            .collect();
        if rules.is_empty() {
            continue;
        }
        let recursive = c.len() > 1
            || program.rules.iter().any(|r| {
                r.head.pred.index() == c[0] && r.body.iter().any(|a| a.pred.index() == c[0])
            });
        strata.push(Stratum {
            preds: c.iter().map(|&p| PredId(p as u32)).collect(),
            rules,
            recursive,
        });
    }
    strata
}

impl IncrementalEval {
    /// Stratifies `program` and computes the initial fixpoint on
    /// `input` (counting derivations for the non-recursive
    /// predicates).
    pub fn new(program: &Program, input: &Structure) -> IncrementalEval {
        let mut me = IncrementalEval {
            strata: stratify(program),
            program: program.clone(),
            universe: 0,
            edb: HashMap::new(),
            idb: HashMap::new(),
            counts: HashMap::new(),
            stats: IncStats::default(),
        };
        me.recompute(input);
        me
    }

    /// Re-derives everything from scratch on `input` (initial build and
    /// the universe-growth fallback).
    fn recompute(&mut self, input: &Structure) {
        self.universe = input.universe() as u32;
        self.edb = edb_store(&self.program, input);
        self.idb.clear();
        self.counts.clear();
        for si in 0..self.strata.len() {
            if self.strata[si].recursive {
                self.eval_recursive_stratum(si);
            } else {
                self.eval_counting_stratum(si);
            }
        }
    }

    /// Full evaluation of a non-recursive stratum: enumerate every rule
    /// derivation, counting multiplicities.
    fn eval_counting_stratum(&mut self, si: usize) {
        let stratum = &self.strata[si];
        let p = stratum.preds[0];
        let (edb, idb) = (&self.edb, &self.idb);
        let pcounts = self.counts.entry(p).or_default();
        let join_work = &mut self.stats.join_work;
        for &ri in &stratum.rules {
            let rule = &self.program.rules[ri];
            let sources: Vec<AtomSource> = rule
                .body
                .iter()
                .map(|a| AtomSource::Set(full_set(edb, idb, a.pred)))
                .collect();
            derive(
                rule,
                &sources,
                self.universe,
                &mut |fact| {
                    *pcounts.entry(fact).or_insert(0) += 1;
                },
                join_work,
            );
        }
        let set: HashSet<Vec<u32>> = pcounts.keys().cloned().collect();
        self.idb.insert(p, set);
    }

    /// Full evaluation of a recursive stratum: round-one full join,
    /// then semi-naive iteration within the stratum.
    fn eval_recursive_stratum(&mut self, si: usize) {
        let stratum = &self.strata[si];
        let mut emitted: Vec<(PredId, Vec<u32>)> = Vec::new();
        for &ri in &stratum.rules {
            let rule = &self.program.rules[ri];
            let sources: Vec<AtomSource> = rule
                .body
                .iter()
                .map(|a| AtomSource::Set(full_set(&self.edb, &self.idb, a.pred)))
                .collect();
            let head = rule.head.pred;
            derive(
                rule,
                &sources,
                self.universe,
                &mut |fact| emitted.push((head, fact)),
                &mut self.stats.join_work,
            );
        }
        let mut batch: HashMap<PredId, Vec<Vec<u32>>> = HashMap::new();
        for (p, fact) in emitted {
            if self.idb.entry(p).or_default().insert(fact.clone()) {
                batch.entry(p).or_default().push(fact);
            }
        }
        self.saturate_stratum(si, batch, None);
    }

    /// Semi-naive iteration within stratum `si` from the given delta
    /// batches: each round joins one batch position against the current
    /// (live) state of everything else, inserting newly derived facts.
    /// With `restrict` set, only facts in that per-predicate allowance
    /// are inserted (the DRed re-derivation filter); newly inserted
    /// facts are also recorded into `record` when provided by the
    /// caller via `saturate_recording`.
    fn saturate_stratum(
        &mut self,
        si: usize,
        mut batch: HashMap<PredId, Vec<Vec<u32>>>,
        mut record: Option<&mut HashMap<PredId, HashSet<Vec<u32>>>>,
    ) {
        while !batch.is_empty() {
            let mut emitted: Vec<(PredId, Vec<u32>)> = Vec::new();
            {
                let stratum = &self.strata[si];
                let (edb, idb) = (&self.edb, &self.idb);
                let join_work = &mut self.stats.join_work;
                for &ri in &stratum.rules {
                    let rule = &self.program.rules[ri];
                    for pos in 0..rule.body.len() {
                        let Some(b) = batch.get(&rule.body[pos].pred) else {
                            continue;
                        };
                        let sources: Vec<AtomSource> = rule
                            .body
                            .iter()
                            .enumerate()
                            .map(|(j, a)| {
                                if j == pos {
                                    AtomSource::Slice(&b[..])
                                } else {
                                    AtomSource::Set(full_set(edb, idb, a.pred))
                                }
                            })
                            .collect();
                        let head = rule.head.pred;
                        derive(
                            rule,
                            &sources,
                            self.universe,
                            &mut |fact| emitted.push((head, fact)),
                            join_work,
                        );
                    }
                }
            }
            batch.clear();
            for (p, fact) in emitted {
                if self.idb.entry(p).or_default().insert(fact.clone()) {
                    if let Some(rec) = record.as_deref_mut() {
                        rec.entry(p).or_default().insert(fact.clone());
                    }
                    batch.entry(p).or_default().push(fact);
                }
            }
        }
    }

    /// Absorbs `delta`, whose post-state is `input2` (used for the
    /// fallback path and consistency checks). Returns the goal verdict
    /// on the new state.
    pub fn apply_delta(&mut self, input2: &Structure, delta: &StructureDelta) -> bool {
        if delta.grows_universe() || input2.universe() as u32 != self.universe {
            self.stats.full_recomputes += 1;
            self.recompute(input2);
            return self.goal_derived();
        }
        // Map structure-level facts to program EDB predicates; facts on
        // relations the program does not read (or reads at a different
        // arity, mirroring `edb_store`) cannot change the fixpoint.
        let mut removed_edb: HashMap<PredId, Vec<Vec<u32>>> = HashMap::new();
        let mut added_edb: HashMap<PredId, Vec<Vec<u32>>> = HashMap::new();
        for (r, tuple) in delta.retracted() {
            if let Some(p) = self.edb_pred_for(input2, *r) {
                removed_edb
                    .entry(p)
                    .or_default()
                    .push(tuple.iter().map(|e| e.0).collect());
            }
        }
        for (r, tuple) in delta.added() {
            if let Some(p) = self.edb_pred_for(input2, *r) {
                added_edb
                    .entry(p)
                    .or_default()
                    .push(tuple.iter().map(|e| e.0).collect());
            }
        }
        self.stats.incremental_updates += 1;
        self.sweep(removed_edb, true);
        self.sweep(added_edb, false);
        self.goal_derived()
    }

    /// The EDB predicate a structure relation binds to, if any — the
    /// inverse of [`edb_store`]'s name-and-arity binding.
    fn edb_pred_for(&self, input: &Structure, r: cqcs_structures::RelId) -> Option<PredId> {
        let name = input.vocabulary().name(r);
        let arity = input.vocabulary().arity(r);
        self.program
            .edb_preds()
            .find(|&p| self.program.pred_name(p) == name && self.program.pred_arity(p) == arity)
    }

    /// One single-signed sweep over the strata: applies the EDB-level
    /// delta, then propagates per stratum by counting (non-recursive)
    /// or DRed / semi-naive continuation (recursive). `removing`
    /// selects the deletion or addition sweep.
    fn sweep(&mut self, edb_delta: HashMap<PredId, Vec<Vec<u32>>>, removing: bool) {
        // delta[p]: facts that actually changed state during this sweep.
        let mut delta: HashMap<PredId, HashSet<Vec<u32>>> = HashMap::new();
        for (p, facts) in edb_delta {
            let set = self.edb.entry(p).or_default();
            let changed = delta.entry(p).or_default();
            for f in facts {
                let flipped = if removing {
                    set.remove(&f)
                } else {
                    set.insert(f.clone())
                };
                if flipped {
                    changed.insert(f);
                }
            }
        }
        delta.retain(|_, d| !d.is_empty());
        if delta.is_empty() {
            return;
        }
        for si in 0..self.strata.len() {
            match (self.strata[si].recursive, removing) {
                (false, _) => self.count_stratum_delta(si, &mut delta, removing),
                (true, true) => self.dred_stratum(si, &mut delta),
                (true, false) => {
                    let batch: HashMap<PredId, Vec<Vec<u32>>> = delta
                        .iter()
                        .map(|(p, d)| (*p, d.iter().cloned().collect()))
                        .collect();
                    let mut record = HashMap::new();
                    self.saturate_stratum(si, batch, Some(&mut record));
                    for (p, facts) in record {
                        delta.entry(p).or_default().extend(facts);
                    }
                }
            }
        }
    }

    /// Counting maintenance for a non-recursive stratum: telescopes
    /// each rule body — position `i` takes the delta, earlier positions
    /// the new state, later positions the old (deletion) or
    /// pre-addition (addition) state — so each emission adjusts the
    /// head fact's derivation count by exactly its change in
    /// derivations. Facts whose count crosses zero flip state and join
    /// the sweep's delta.
    fn count_stratum_delta(
        &mut self,
        si: usize,
        delta: &mut HashMap<PredId, HashSet<Vec<u32>>>,
        removing: bool,
    ) {
        let stratum = &self.strata[si];
        let p = stratum.preds[0];
        // Old/mid views for every changed predicate: deletion sweeps
        // join later positions against `current ∪ removed`, addition
        // sweeps against `current ∖ added`.
        let mut patched: HashMap<PredId, HashSet<Vec<u32>>> = HashMap::new();
        for (q, d) in delta.iter() {
            let mut s = full_set(&self.edb, &self.idb, *q).clone();
            if removing {
                s.extend(d.iter().cloned());
            } else {
                for f in d {
                    s.remove(f);
                }
            }
            patched.insert(*q, s);
        }
        let (edb, idb) = (&self.edb, &self.idb);
        let pcounts = self.counts.entry(p).or_default();
        let join_work = &mut self.stats.join_work;
        for &ri in &stratum.rules {
            let rule = &self.program.rules[ri];
            for pos in 0..rule.body.len() {
                let Some(d) = delta.get(&rule.body[pos].pred) else {
                    continue;
                };
                let sources: Vec<AtomSource> = rule
                    .body
                    .iter()
                    .enumerate()
                    .map(|(j, a)| {
                        if j == pos {
                            AtomSource::Set(d)
                        } else if j < pos {
                            AtomSource::Set(full_set(edb, idb, a.pred))
                        } else {
                            match patched.get(&a.pred) {
                                Some(s) => AtomSource::Set(s),
                                None => AtomSource::Set(full_set(edb, idb, a.pred)),
                            }
                        }
                    })
                    .collect();
                derive(
                    rule,
                    &sources,
                    self.universe,
                    &mut |fact| {
                        if removing {
                            let c = pcounts
                                .get_mut(&fact)
                                .expect("counting underflow: deleting an underived fact");
                            debug_assert!(*c > 0);
                            *c -= 1;
                        } else {
                            *pcounts.entry(fact).or_insert(0) += 1;
                        }
                    },
                    join_work,
                );
            }
        }
        // Reconcile flipped facts into the store and the sweep delta.
        let set = self.idb.entry(p).or_default();
        let changed = delta.entry(p).or_default();
        if removing {
            pcounts.retain(|fact, c| {
                if *c == 0 {
                    set.remove(fact);
                    changed.insert(fact.clone());
                    false
                } else {
                    true
                }
            });
        } else {
            for fact in pcounts.keys() {
                if set.insert(fact.clone()) {
                    changed.insert(fact.clone());
                }
            }
        }
        if changed.is_empty() {
            delta.remove(&p);
        }
    }

    /// DRed deletion maintenance for a recursive stratum:
    /// over-delete every fact with a derivation through a deleted
    /// fact (semi-naive, joined against the pre-deletion state), then
    /// re-derive the survivors from the post-deletion state. The net
    /// removals join the sweep's delta for higher strata.
    fn dred_stratum(&mut self, si: usize, delta: &mut HashMap<PredId, HashSet<Vec<u32>>>) {
        // Pre-deletion views of the already-updated lower strata.
        let mut old_lower: HashMap<PredId, HashSet<Vec<u32>>> = HashMap::new();
        for (q, d) in delta.iter() {
            let mut s = full_set(&self.edb, &self.idb, *q).clone();
            s.extend(d.iter().cloned());
            old_lower.insert(*q, s);
        }
        // --- Over-delete ---
        let mut over: HashMap<PredId, HashSet<Vec<u32>>> = HashMap::new();
        let mut batch: HashMap<PredId, Vec<Vec<u32>>> = delta
            .iter()
            .map(|(p, d)| (*p, d.iter().cloned().collect()))
            .collect();
        while !batch.is_empty() {
            let mut emitted: Vec<(PredId, Vec<u32>)> = Vec::new();
            {
                let stratum = &self.strata[si];
                let (edb, idb) = (&self.edb, &self.idb);
                let join_work = &mut self.stats.join_work;
                for &ri in &stratum.rules {
                    let rule = &self.program.rules[ri];
                    for pos in 0..rule.body.len() {
                        let Some(b) = batch.get(&rule.body[pos].pred) else {
                            continue;
                        };
                        let sources: Vec<AtomSource> = rule
                            .body
                            .iter()
                            .enumerate()
                            .map(|(j, a)| {
                                if j == pos {
                                    AtomSource::Slice(&b[..])
                                } else {
                                    // Old state: patched lower strata;
                                    // this stratum's sets are untouched
                                    // until over-deletion completes.
                                    match old_lower.get(&a.pred) {
                                        Some(s) => AtomSource::Set(s),
                                        None => AtomSource::Set(full_set(edb, idb, a.pred)),
                                    }
                                }
                            })
                            .collect();
                        let head = rule.head.pred;
                        derive(
                            rule,
                            &sources,
                            self.universe,
                            &mut |fact| emitted.push((head, fact)),
                            join_work,
                        );
                    }
                }
            }
            batch.clear();
            for (p, fact) in emitted {
                if self.idb.get(&p).is_some_and(|s| s.contains(&fact))
                    && over.entry(p).or_default().insert(fact.clone())
                {
                    batch.entry(p).or_default().push(fact);
                }
            }
        }
        if over.values().all(|s| s.is_empty()) {
            return;
        }
        for (p, facts) in &over {
            if let Some(set) = self.idb.get_mut(p) {
                for f in facts {
                    set.remove(f);
                }
            }
        }
        // --- Re-derive --- round one joins every stratum rule over the
        // post-deletion state; only over-deleted facts may re-enter.
        let mut emitted: Vec<(PredId, Vec<u32>)> = Vec::new();
        {
            let stratum = &self.strata[si];
            let (edb, idb) = (&self.edb, &self.idb);
            let join_work = &mut self.stats.join_work;
            for &ri in &stratum.rules {
                let rule = &self.program.rules[ri];
                let sources: Vec<AtomSource> = rule
                    .body
                    .iter()
                    .map(|a| AtomSource::Set(full_set(edb, idb, a.pred)))
                    .collect();
                let head = rule.head.pred;
                derive(
                    rule,
                    &sources,
                    self.universe,
                    &mut |fact| emitted.push((head, fact)),
                    join_work,
                );
            }
        }
        let mut seed: HashMap<PredId, Vec<Vec<u32>>> = HashMap::new();
        for (p, fact) in emitted {
            if over.get(&p).is_some_and(|s| s.contains(&fact))
                && self.idb.entry(p).or_default().insert(fact.clone())
            {
                seed.entry(p).or_default().push(fact);
            }
        }
        // Saturate without the `over` restriction: every fact derivable
        // from re-inserted survivors is genuinely derivable. Facts not
        // in `over` are still present, so only survivors re-enter.
        self.saturate_stratum(si, seed, None);
        // Net removals (over-deleted, not re-derived) feed upper strata.
        for (p, facts) in over {
            let present = self.idb.get(&p);
            let changed = delta.entry(p).or_default();
            for f in facts {
                if !present.is_some_and(|s| s.contains(&f)) {
                    changed.insert(f);
                }
            }
        }
        delta.retain(|_, d| !d.is_empty());
    }

    /// Whether any fact of the goal predicate currently holds.
    pub fn goal_derived(&self) -> bool {
        self.idb
            .get(&self.program.goal)
            .is_some_and(|s| !s.is_empty())
    }

    /// The maintained IDB facts (compare with
    /// [`EvalResult::facts`](crate::eval::EvalResult::facts)).
    pub fn facts(&self) -> &FactStore {
        &self.idb
    }

    /// The program being maintained.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Update-path counters.
    pub fn stats(&self) -> IncStats {
        self.stats
    }

    /// `(predicate count, recursive)` per stratum, in evaluation order
    /// (diagnostics and tests).
    pub fn strata_summary(&self) -> Vec<(usize, bool)> {
        self.strata
            .iter()
            .map(|s| (s.preds.len(), s.recursive))
            .collect()
    }
}

/// A registered goal check over a changing structure: feed
/// [`StructureDelta`]s, get notified exactly when the goal verdict
/// flips. The Datalog half of the delta-solve pipeline's watch surface
/// (the homomorphism half lives in `cqcs-core`).
#[derive(Debug)]
pub struct DatalogWatch {
    eval: IncrementalEval,
    current: Structure,
    verdict: bool,
}

impl DatalogWatch {
    /// Registers `program` over `input` and computes the initial
    /// verdict.
    pub fn new(program: &Program, input: &Structure) -> DatalogWatch {
        let eval = IncrementalEval::new(program, input);
        let verdict = eval.goal_derived();
        DatalogWatch {
            eval,
            current: input.clone(),
            verdict,
        }
    }

    /// Applies `delta` to the watched structure. Returns
    /// `Ok(Some(new_verdict))` exactly when the goal verdict flipped,
    /// `Ok(None)` when it held; errors (vocabulary mismatch, facts that
    /// do not match the current structure) leave the watch unchanged.
    pub fn apply(&mut self, delta: &StructureDelta) -> cqcs_structures::Result<Option<bool>> {
        let next = delta.apply(&self.current)?;
        let verdict = self.eval.apply_delta(&next, delta);
        self.current = next;
        Ok(if verdict != self.verdict {
            self.verdict = verdict;
            Some(verdict)
        } else {
            None
        })
    }

    /// The current goal verdict.
    pub fn goal_derived(&self) -> bool {
        self.verdict
    }

    /// The structure as of the last applied delta.
    pub fn current(&self) -> &Structure {
        &self.current
    }

    /// The underlying maintainer (facts, stats).
    pub fn eval(&self) -> &IncrementalEval {
        &self.eval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ProgramBuilder;
    use crate::eval::eval_semi_naive;
    use cqcs_structures::{generators, StructureBuilder};

    /// One scripted update: (edges added, edges retracted).
    type EdgeScript<'a> = &'a [(&'a [(u32, u32)], &'a [(u32, u32)])];

    fn tc_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.rule(("P", &["X", "Y"]), &[("E", &["X", "Y"])]);
        b.rule(
            ("P", &["X", "Y"]),
            &[("P", &["X", "Z"]), ("E", &["Z", "Y"])],
        );
        b.rule(("Q", &[]), &[("P", &["X", "X"])]);
        b.finish("Q")
    }

    fn digraph(edges: &[(u32, u32)], n: usize) -> Structure {
        let mut b = StructureBuilder::new(generators::digraph_vocabulary(), n);
        for &(x, y) in edges {
            b.add_fact("E", &[x, y]).unwrap();
        }
        b.finish()
    }

    /// Per-predicate equality of the maintained facts against a
    /// from-scratch semi-naive run on `input`.
    fn assert_pinned(inc: &IncrementalEval, program: &Program, input: &Structure, what: &str) {
        let scratch = eval_semi_naive(program, input);
        assert_eq!(inc.goal_derived(), scratch.goal_derived, "{what}: goal");
        for p in (0..program.num_preds() as u32).map(PredId) {
            if !program.is_idb(p) {
                continue;
            }
            assert_eq!(
                inc.facts().get(&p).cloned().unwrap_or_default(),
                scratch.facts.get(&p).cloned().unwrap_or_default(),
                "{what}: pred {}",
                program.pred_name(p)
            );
        }
    }

    #[test]
    fn stratification_shape() {
        let program = tc_program();
        let input = digraph(&[(0, 1)], 2);
        let inc = IncrementalEval::new(&program, &input);
        // E is EDB (no stratum); P is self-recursive; Q is not.
        assert_eq!(inc.strata_summary(), vec![(1, true), (1, false)]);
    }

    #[test]
    fn incremental_matches_scratch_on_tc_stream() {
        let program = tc_program();
        let a0 = digraph(&[(0, 1), (1, 2), (4, 5)], 6);
        let mut inc = IncrementalEval::new(&program, &a0);
        assert_pinned(&inc, &program, &a0, "initial");
        // A mixed stream: grow a path, close a cycle, break it again,
        // touch a disconnected component.
        let script: EdgeScript = &[
            (&[(2, 3)], &[]),
            (&[(3, 0)], &[]),         // closes the 0-1-2-3 cycle
            (&[], &[(1, 2)]),         // breaks it
            (&[(5, 4)], &[(4, 5)]),   // rewires the far component
            (&[(1, 2), (2, 2)], &[]), // re-adds plus a self-loop
            (&[], &[(2, 2), (3, 0)]),
        ];
        let mut cur = a0;
        for (i, (adds, rems)) in script.iter().enumerate() {
            let mut d = StructureDelta::new(&cur);
            for &(x, y) in *rems {
                d.retract_fact("E", &[x, y]).unwrap();
            }
            for &(x, y) in *adds {
                d.add_fact("E", &[x, y]).unwrap();
            }
            let next = d.apply(&cur).unwrap();
            inc.apply_delta(&next, &d);
            assert_pinned(&inc, &program, &next, &format!("step {i}"));
            cur = next;
        }
        let stats = inc.stats();
        assert_eq!(stats.incremental_updates, script.len());
        assert_eq!(stats.full_recomputes, 0);
    }

    #[test]
    fn counting_tracks_multiple_derivations() {
        // T(X,Y) :- E(X,Z), E(Z,Y) — non-recursive; (0,2) has two
        // derivations (via 1 and via 3), so it must survive losing one.
        let mut b = ProgramBuilder::new();
        b.rule(
            ("T", &["X", "Y"]),
            &[("E", &["X", "Z"]), ("E", &["Z", "Y"])],
        );
        let program = b.finish("T");
        let a0 = digraph(&[(0, 1), (1, 2), (0, 3), (3, 2)], 4);
        let mut inc = IncrementalEval::new(&program, &a0);
        assert_eq!(inc.strata_summary(), vec![(1, false)]);
        let t = program.pred("T").unwrap();
        assert!(inc.facts()[&t].contains(&vec![0, 2]));

        let mut d = StructureDelta::new(&a0);
        d.retract_fact("E", &[1, 2]).unwrap();
        let a1 = d.apply(&a0).unwrap();
        inc.apply_delta(&a1, &d);
        assert!(inc.facts()[&t].contains(&vec![0, 2]), "one support left");
        assert_pinned(&inc, &program, &a1, "after first retraction");

        let mut d = StructureDelta::new(&a1);
        d.retract_fact("E", &[3, 2]).unwrap();
        let a2 = d.apply(&a1).unwrap();
        inc.apply_delta(&a2, &d);
        assert!(!inc.facts()[&t].contains(&vec![0, 2]), "no support left");
        assert_pinned(&inc, &program, &a2, "after second retraction");
        assert_eq!(inc.stats().full_recomputes, 0);
    }

    #[test]
    fn mutual_recursion_stream() {
        // A and B derive through each other: one SCC of size two.
        let mut b = ProgramBuilder::new();
        b.rule(("A", &["X", "Y"]), &[("E", &["X", "Y"])]);
        b.rule(
            ("A", &["X", "Y"]),
            &[("B", &["X", "Z"]), ("E", &["Z", "Y"])],
        );
        b.rule(
            ("B", &["X", "Y"]),
            &[("A", &["X", "Z"]), ("E", &["Z", "Y"])],
        );
        b.rule(("Q", &[]), &[("A", &["X", "X"])]);
        let program = b.finish("Q");
        let a0 = digraph(&[(0, 1), (1, 2), (2, 3)], 5);
        let mut inc = IncrementalEval::new(&program, &a0);
        assert_eq!(inc.strata_summary(), vec![(2, true), (1, false)]);
        assert_pinned(&inc, &program, &a0, "initial");
        let script: EdgeScript = &[
            (&[(3, 0)], &[]),
            (&[], &[(1, 2)]),
            (&[(1, 4), (4, 2)], &[]),
            (&[], &[(3, 0), (4, 2)]),
        ];
        let mut cur = a0;
        for (i, (adds, rems)) in script.iter().enumerate() {
            let mut d = StructureDelta::new(&cur);
            for &(x, y) in *rems {
                d.retract_fact("E", &[x, y]).unwrap();
            }
            for &(x, y) in *adds {
                d.add_fact("E", &[x, y]).unwrap();
            }
            let next = d.apply(&cur).unwrap();
            inc.apply_delta(&next, &d);
            assert_pinned(&inc, &program, &next, &format!("step {i}"));
            cur = next;
        }
    }

    #[test]
    fn universe_growth_falls_back_to_recompute() {
        let program = tc_program();
        let a0 = digraph(&[(0, 1), (1, 0)], 2);
        let mut inc = IncrementalEval::new(&program, &a0);
        let mut d = StructureDelta::new(&a0);
        d.grow_universe(2);
        d.add_fact("E", &[1, 2]).unwrap();
        let a1 = d.apply(&a0).unwrap();
        inc.apply_delta(&a1, &d);
        assert_pinned(&inc, &program, &a1, "after growth");
        let stats = inc.stats();
        assert_eq!(stats.full_recomputes, 1);
        assert_eq!(stats.incremental_updates, 0);
    }

    #[test]
    fn watch_notifies_exactly_on_goal_flips() {
        let program = tc_program();
        let a0 = digraph(&[(0, 1), (1, 2), (2, 3)], 4);
        let mut w = DatalogWatch::new(&program, &a0);
        assert!(!w.goal_derived(), "a path has no cycle");

        // Irrelevant edge: no flip.
        let mut d = StructureDelta::new(w.current());
        d.add_fact("E", &[0, 2]).unwrap();
        assert_eq!(w.apply(&d).unwrap(), None);

        // Close the cycle: flip to true.
        let mut d = StructureDelta::new(w.current());
        d.add_fact("E", &[3, 0]).unwrap();
        assert_eq!(w.apply(&d).unwrap(), Some(true));
        assert!(w.goal_derived());

        // Another edge while cyclic: no flip.
        let mut d = StructureDelta::new(w.current());
        d.add_fact("E", &[1, 3]).unwrap();
        assert_eq!(w.apply(&d).unwrap(), None);

        // Break every cycle: flip to false. (Removing 3→0 kills the
        // only edge back into 0..=2 from 3.)
        let mut d = StructureDelta::new(w.current());
        d.retract_fact("E", &[3, 0]).unwrap();
        assert_eq!(w.apply(&d).unwrap(), Some(false));
        assert!(!w.goal_derived());

        // A bad delta leaves the watch unchanged.
        let mut d = StructureDelta::new(w.current());
        d.retract_fact("E", &[3, 0]).unwrap();
        assert!(w.apply(&d).is_err());
        assert!(!w.goal_derived());
        assert_eq!(w.eval().stats().full_recomputes, 0);
    }

    #[test]
    fn random_streams_stay_pinned() {
        // Deterministic pseudo-random add/retract streams over a small
        // vertex set, pinned against from-scratch at every step.
        let program = tc_program();
        for seed in 0..8u64 {
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let n = 5usize;
            let mut cur = digraph(&[], n);
            let mut inc = IncrementalEval::new(&program, &cur);
            for step in 0..12 {
                let e = program
                    .pred("E")
                    .map(|_| cur.vocabulary().lookup("E").unwrap())
                    .unwrap();
                let mut d = StructureDelta::new(&cur);
                let mut touched: Vec<(u32, u32)> = Vec::new();
                for _ in 0..(1 + next() % 3) {
                    let x = (next() % n as u64) as u32;
                    let y = (next() % n as u64) as u32;
                    if touched.contains(&(x, y)) {
                        continue;
                    }
                    touched.push((x, y));
                    let present = cur
                        .relation(e)
                        .contains(&[cqcs_structures::Element(x), cqcs_structures::Element(y)]);
                    if present {
                        d.retract_fact("E", &[x, y]).unwrap();
                    } else {
                        d.add_fact("E", &[x, y]).unwrap();
                    }
                }
                let nextg = d.apply(&cur).unwrap();
                inc.apply_delta(&nextg, &d);
                assert_pinned(&inc, &program, &nextg, &format!("seed {seed} step {step}"));
                cur = nextg;
            }
            assert_eq!(inc.stats().full_recomputes, 0, "seed {seed}");
        }
    }
}

//! # cqcs-datalog — the Datalog substrate (§4 of the paper)
//!
//! Feder–Vardi's unifying explanation for tractable CSPs is
//! expressibility of the co-CSP in Datalog; Kolaitis & Vardi's §4 makes
//! that uniform through k-Datalog and pebble games. This crate supplies
//! the engine those results run on:
//!
//! * [`ast`] — programs, rules, interned predicates and variables;
//! * [`parser`] — the usual rule syntax (`P(X,Y) :- E(X,Z), P(Z,Y).`);
//! * [`validate`] — k-Datalog width (≤ k distinct variables per body
//!   and per head) and safety classification;
//! * [`eval`] — bottom-up naive and semi-naive evaluation with
//!   **active-domain semantics** for range-unrestricted head variables
//!   (exactly what the canonical program needs);
//! * [`canonical`] — the canonical program ρ_B of Theorem 4.7(2): a
//!   k-Datalog program expressing "the Spoiler wins the existential
//!   k-pebble game on (A, B)" for fixed B;
//! * [`programs`] — textbook programs (non-2-colorability from §4.1,
//!   reachability) used across tests and benches;
//! * [`incremental`] — delta maintenance of the least fixpoint:
//!   counting for non-recursive predicates, DRed delete/re-derive for
//!   recursive strata, and a [`DatalogWatch`] that notifies exactly on
//!   goal-verdict flips under a
//!   [`StructureDelta`](cqcs_structures::StructureDelta) stream.

pub mod ast;
pub mod canonical;
pub mod eval;
pub mod incremental;
pub mod parser;
pub mod programs;
pub mod validate;

pub use ast::{Atom, PredId, Program, ProgramBuilder, Rule, VarId};
pub use canonical::canonical_program;
pub use eval::{eval_naive, eval_semi_naive, EvalResult};
pub use incremental::{DatalogWatch, IncStats, IncrementalEval};
pub use parser::parse_program;
pub use validate::{datalog_width, is_k_datalog};

//! Bottom-up Datalog evaluation.
//!
//! Both the textbook **naive** iteration and the **semi-naive**
//! differential variant are provided (experiment E12 measures the gap).
//! Semantics are over the **active domain**: rule variables range over
//! the whole universe of the input structure, so range-unrestricted
//! head variables (which the canonical program ρ_B of Theorem 4.7 uses)
//! mean "for every element". Evaluation terminates within a polynomial
//! number of steps in the size of the input, as the paper recalls in
//! §4.1.

use crate::ast::{Atom, PredId, Program, Rule};
use cqcs_structures::Structure;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// Derived facts per predicate.
pub type FactStore = HashMap<PredId, HashSet<Vec<u32>>>;

/// An append-only fact list with a tuple-membership index: facts are
/// stored once, in derivation order, so the semi-naive evaluator's
/// deltas are just index ranges into this vector — no per-stratum
/// cloning of relations into a separate delta store. Membership is a
/// hash-bucket lookup (full-tuple comparison on collision, so the index
/// is exact).
#[derive(Debug, Default)]
struct IndexedFacts {
    facts: Vec<Vec<u32>>,
    /// fact hash → indices into `facts` with that hash.
    index: HashMap<u64, Vec<u32>>,
}

impl IndexedFacts {
    fn hash_of(fact: &[u32]) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        fact.hash(&mut h);
        h.finish()
    }

    /// Membership with a caller-computed hash, so one hash serves
    /// several probes of the same fact.
    fn contains_hashed(&self, hash: u64, fact: &[u32]) -> bool {
        self.index
            .get(&hash)
            .is_some_and(|ids| ids.iter().any(|&i| self.facts[i as usize] == fact))
    }

    /// Appends `fact` unless already present; reports whether it was new.
    fn insert(&mut self, fact: Vec<u32>) -> bool {
        self.insert_hashed(Self::hash_of(&fact), fact)
    }

    fn insert_hashed(&mut self, hash: u64, fact: Vec<u32>) -> bool {
        let ids = self.index.entry(hash).or_default();
        if ids.iter().any(|&i| self.facts[i as usize] == fact) {
            return false;
        }
        ids.push(self.facts.len() as u32);
        self.facts.push(fact);
        true
    }

    /// Empties the store, keeping allocations (scratch reuse).
    fn clear(&mut self) {
        self.facts.clear();
        self.index.clear();
    }
}

/// Where one body atom draws its candidate facts from: an EDB hash set
/// or a (possibly delta-ranged) slice of an [`IndexedFacts`] vector.
/// Shared with the incremental maintainer in [`crate::incremental`].
pub(crate) enum AtomSource<'a> {
    Set(&'a HashSet<Vec<u32>>),
    Slice(&'a [Vec<u32>]),
}

impl<'a> AtomSource<'a> {
    fn iter(&self) -> SourceIter<'a> {
        match self {
            AtomSource::Set(s) => SourceIter::Set(s.iter()),
            AtomSource::Slice(s) => SourceIter::Slice(s.iter()),
        }
    }
}

enum SourceIter<'a> {
    Set(std::collections::hash_set::Iter<'a, Vec<u32>>),
    Slice(std::slice::Iter<'a, Vec<u32>>),
}

impl<'a> Iterator for SourceIter<'a> {
    type Item = &'a Vec<u32>;
    fn next(&mut self) -> Option<&'a Vec<u32>> {
        match self {
            SourceIter::Set(it) => it.next(),
            SourceIter::Slice(it) => it.next(),
        }
    }
}

/// The outcome of a bottom-up evaluation.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// All derived IDB facts (EDB facts are not copied in).
    pub facts: FactStore,
    /// Whether any fact of the goal predicate was derived.
    pub goal_derived: bool,
    /// Rule-application rounds performed. Both evaluators use the same
    /// convention — every round actually executed is counted,
    /// including naive evaluation's final no-change round and
    /// semi-naive evaluation's seeding round — so the two figures are
    /// directly comparable in experiment E12.
    pub iterations: usize,
    /// Total rule-body join attempts (a work measure for E12).
    pub join_work: usize,
}

/// Binds the program's EDB predicates to the structure's relations by
/// name; missing relations are treated as empty.
pub(crate) fn edb_store(program: &Program, input: &Structure) -> FactStore {
    let mut store: FactStore = HashMap::new();
    for p in program.edb_preds() {
        let mut set = HashSet::new();
        if let Some(rel) = input.vocabulary().lookup(program.pred_name(p)) {
            if input.vocabulary().arity(rel) == program.pred_arity(p) {
                for t in input.relation(rel).iter() {
                    set.insert(t.iter().map(|e| e.0).collect());
                }
            }
        }
        store.insert(p, set);
    }
    store
}

/// Naive evaluation: re-derive everything until no new fact appears.
pub fn eval_naive(program: &Program, input: &Structure) -> EvalResult {
    let edb = edb_store(program, input);
    let universe = input.universe() as u32;
    let mut idb: FactStore = HashMap::new();
    let mut iterations = 0usize;
    let mut join_work = 0usize;
    loop {
        iterations += 1;
        let mut fresh: Vec<(PredId, Vec<u32>)> = Vec::new();
        for rule in &program.rules {
            let sources: Vec<AtomSource> = rule
                .body
                .iter()
                .map(|a| naive_source(a, &edb, &idb))
                .collect();
            derive(
                rule,
                &sources,
                universe,
                &mut |fact| {
                    fresh.push((rule.head.pred, fact));
                },
                &mut join_work,
            );
        }
        let mut changed = false;
        for (p, fact) in fresh {
            if idb.entry(p).or_default().insert(fact) {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let goal_derived = idb.get(&program.goal).is_some_and(|s| !s.is_empty());
    EvalResult {
        facts: idb,
        goal_derived,
        iterations,
        join_work,
    }
}

fn naive_source<'a>(atom: &Atom, edb: &'a FactStore, idb: &'a FactStore) -> AtomSource<'a> {
    let store = if edb.contains_key(&atom.pred) {
        edb
    } else {
        idb
    };
    match store.get(&atom.pred) {
        Some(facts) => AtomSource::Set(facts),
        None => AtomSource::Slice(&[]),
    }
}

/// Semi-naive evaluation: each round only instantiates rule bodies with
/// at least one atom taken from the previous round's delta.
///
/// Derived facts live in per-predicate [`IndexedFacts`] — an
/// append-only vector plus a tuple-membership index — and a round's
/// delta is just the index range appended by the previous round, read
/// as a slice. Nothing is cloned between the delta and the full store
/// (the pre-rework evaluator copied every delta fact into the IDB per
/// stratum), and the final [`EvalResult::facts`] is built by *moving*
/// the vectors. Output is pinned equal to [`eval_naive`]'s (tests and
/// E12), and `iterations`/`join_work` keep their conventions.
pub fn eval_semi_naive(program: &Program, input: &Structure) -> EvalResult {
    let edb = edb_store(program, input);
    let universe = input.universe() as u32;
    let mut idb: HashMap<PredId, IndexedFacts> = HashMap::new();
    // Pre-round fact counts: facts [..snapshot] are the full store a
    // round may read, [delta_start..snapshot] the current delta.
    fn snapshot_of(idb: &HashMap<PredId, IndexedFacts>) -> HashMap<PredId, usize> {
        idb.iter().map(|(p, f)| (*p, f.facts.len())).collect()
    }
    let mut iterations = 0usize;
    let mut join_work = 0usize;
    // Per-derive scratch: dedups at emit time, so peak memory is
    // bounded by *distinct* new facts (as the old per-round hash sets
    // were), not by total join emissions.
    let mut derived = IndexedFacts::default();

    // Round 0: rules whose bodies contain no IDB atom (including empty
    // bodies). This seeding round is a rule-application round and is
    // counted, matching the naive evaluator's every-round convention.
    iterations += 1;
    for rule in &program.rules {
        if rule.body.iter().all(|a| !program.is_idb(a.pred)) {
            let sources: Vec<AtomSource> = rule
                .body
                .iter()
                .map(|a| {
                    edb.get(&a.pred)
                        .map_or(AtomSource::Slice(&[]), AtomSource::Set)
                })
                .collect();
            derive(
                rule,
                &sources,
                universe,
                &mut |fact| {
                    derived.insert(fact);
                },
                &mut join_work,
            );
            let store = idb.entry(rule.head.pred).or_default();
            for fact in derived.facts.drain(..) {
                store.insert(fact);
            }
            derived.clear();
        }
    }

    // Each main round reads the store as of its start (`snapshot`) and
    // appends; the facts appended during round k are round k+1's delta.
    let mut delta_start: HashMap<PredId, usize> = HashMap::new();
    loop {
        let snapshot = snapshot_of(&idb);
        let any_delta = snapshot
            .iter()
            .any(|(p, &end)| delta_start.get(p).copied().unwrap_or(0) < end);
        if !any_delta {
            break;
        }
        iterations += 1;
        for rule in &program.rules {
            for (pos, atom) in rule.body.iter().enumerate() {
                if !program.is_idb(atom.pred) {
                    continue;
                }
                let d_end = snapshot.get(&atom.pred).copied().unwrap_or(0);
                let d_start = delta_start.get(&atom.pred).copied().unwrap_or(0);
                if d_start >= d_end {
                    continue;
                }
                {
                    let sources: Vec<AtomSource> = rule
                        .body
                        .iter()
                        .enumerate()
                        .map(|(i, a)| {
                            if let Some(facts) = edb.get(&a.pred) {
                                return AtomSource::Set(facts);
                            }
                            let all = idb.get(&a.pred).map_or(&[][..], |f| &f.facts[..]);
                            let end = snapshot.get(&a.pred).copied().unwrap_or(0);
                            if i == pos {
                                AtomSource::Slice(&all[d_start..end])
                            } else {
                                AtomSource::Slice(&all[..end])
                            }
                        })
                        .collect();
                    let head = idb.get(&rule.head.pred);
                    derive(
                        rule,
                        &sources,
                        universe,
                        &mut |fact| {
                            let h = IndexedFacts::hash_of(&fact);
                            if !head.is_some_and(|f| f.contains_hashed(h, &fact)) {
                                derived.insert_hashed(h, fact);
                            }
                        },
                        &mut join_work,
                    );
                }
                if !derived.facts.is_empty() {
                    let store = idb.entry(rule.head.pred).or_default();
                    for fact in derived.facts.drain(..) {
                        store.insert(fact);
                    }
                    derived.clear();
                }
            }
        }
        for (p, end) in snapshot {
            delta_start.insert(p, end);
        }
    }
    let goal_derived = idb.get(&program.goal).is_some_and(|f| !f.facts.is_empty());
    // Moves, not clones: each fact vector is handed to the result set.
    let facts: FactStore = idb
        .into_iter()
        .map(|(p, f)| (p, f.facts.into_iter().collect::<HashSet<_>>()))
        .collect();
    EvalResult {
        facts,
        goal_derived,
        iterations,
        join_work,
    }
}

/// Evaluates one rule body by backtracking join over the given per-atom
/// fact sources; head-only variables range over the active domain.
pub(crate) fn derive(
    rule: &Rule,
    sources: &[AtomSource],
    universe: u32,
    emit: &mut dyn FnMut(Vec<u32>),
    join_work: &mut usize,
) {
    let mut binding: Vec<Option<u32>> = vec![None; rule.num_vars];
    join_atoms(rule, 0, sources, universe, &mut binding, emit, join_work);
}

fn join_atoms(
    rule: &Rule,
    pos: usize,
    sources: &[AtomSource],
    universe: u32,
    binding: &mut Vec<Option<u32>>,
    emit: &mut dyn FnMut(Vec<u32>),
    join_work: &mut usize,
) {
    if pos == rule.body.len() {
        // Enumerate head-only variables over the active domain.
        emit_heads(rule, 0, universe, binding, emit);
        return;
    }
    let atom = &rule.body[pos];
    // One scratch list per join level, reused across the fact loop
    // (the old per-fact `Vec::new()` was a heap allocation per
    // `join_work` unit).
    let mut bound_here: Vec<usize> = Vec::with_capacity(atom.args.len());
    'fact: for fact in sources[pos].iter() {
        *join_work += 1;
        bound_here.clear();
        for (i, &v) in atom.args.iter().enumerate() {
            match binding[v.index()] {
                Some(existing) if existing != fact[i] => {
                    for &b in &bound_here {
                        binding[b] = None;
                    }
                    continue 'fact;
                }
                Some(_) => {}
                None => {
                    binding[v.index()] = Some(fact[i]);
                    bound_here.push(v.index());
                }
            }
        }
        join_atoms(rule, pos + 1, sources, universe, binding, emit, join_work);
        for &b in &bound_here {
            binding[b] = None;
        }
    }
}

fn emit_heads(
    rule: &Rule,
    from: usize,
    universe: u32,
    binding: &mut Vec<Option<u32>>,
    emit: &mut dyn FnMut(Vec<u32>),
) {
    // Find the next unbound head variable.
    let unbound = rule.head.args[from..]
        .iter()
        .enumerate()
        .find(|(_, v)| binding[v.index()].is_none());
    match unbound {
        None => {
            let fact: Vec<u32> = rule
                .head
                .args
                .iter()
                .map(|v| binding[v.index()].expect("all head vars bound"))
                .collect();
            emit(fact);
        }
        Some((offset, &v)) => {
            let at = from + offset;
            for value in 0..universe {
                binding[v.index()] = Some(value);
                emit_heads(rule, at + 1, universe, binding, emit);
            }
            binding[v.index()] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ProgramBuilder;
    use cqcs_structures::generators;

    fn tc_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.rule(("P", &["X", "Y"]), &[("E", &["X", "Y"])]);
        b.rule(
            ("P", &["X", "Y"]),
            &[("P", &["X", "Z"]), ("E", &["Z", "Y"])],
        );
        b.rule(("Q", &[]), &[("P", &["X", "X"])]);
        b.finish("Q")
    }

    #[test]
    fn transitive_closure_on_path() {
        let program = tc_program();
        let input = generators::directed_path(4);
        for result in [
            eval_naive(&program, &input),
            eval_semi_naive(&program, &input),
        ] {
            let p = program.pred("P").unwrap();
            let facts = &result.facts[&p];
            assert_eq!(facts.len(), 6, "all pairs i<j on a 4-path");
            assert!(facts.contains(&vec![0u32, 3]));
            assert!(!result.goal_derived, "a path has no cycle");
        }
    }

    #[test]
    fn cycle_detection_goal() {
        let program = tc_program();
        let input = generators::directed_cycle(3);
        assert!(eval_naive(&program, &input).goal_derived);
        assert!(eval_semi_naive(&program, &input).goal_derived);
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        let program = tc_program();
        for seed in 0..10u64 {
            let input = generators::random_digraph(6, 0.3, seed);
            let a = eval_naive(&program, &input);
            let b = eval_semi_naive(&program, &input);
            assert_eq!(a.goal_derived, b.goal_derived, "seed {seed}");
            let p = program.pred("P").unwrap();
            assert_eq!(
                a.facts.get(&p).cloned().unwrap_or_default(),
                b.facts.get(&p).cloned().unwrap_or_default(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn semi_naive_does_less_join_work() {
        let program = tc_program();
        let input = generators::directed_path(12);
        let naive = eval_naive(&program, &input);
        let semi = eval_semi_naive(&program, &input);
        assert!(
            semi.join_work < naive.join_work,
            "semi-naive {} !< naive {}",
            semi.join_work,
            naive.join_work
        );
    }

    #[test]
    fn active_domain_head_variables() {
        // T(X, Y) :- E(X, X).  Y is range-unrestricted: derives a fact
        // per universe element once some loop exists.
        let mut b = ProgramBuilder::new();
        b.rule(("T", &["X", "Y"]), &[("E", &["X", "X"])]);
        let program = b.finish("T");
        let voc = generators::digraph_vocabulary();
        let mut sb = cqcs_structures::StructureBuilder::new(voc, 4);
        sb.add_fact("E", &[2, 2]).unwrap();
        let input = sb.finish();
        let result = eval_naive(&program, &input);
        let t = program.pred("T").unwrap();
        assert_eq!(result.facts[&t].len(), 4, "Y ranges over the universe");
        assert!(result.facts[&t].contains(&vec![2u32, 0]));
        let semi = eval_semi_naive(&program, &input);
        assert_eq!(semi.facts[&t], result.facts[&t]);
    }

    #[test]
    fn empty_body_rules_fire_unconditionally() {
        let mut b = ProgramBuilder::new();
        b.rule(("T", &["X"]), &[]);
        let program = b.finish("T");
        let input = generators::directed_path(3);
        let result = eval_semi_naive(&program, &input);
        let t = program.pred("T").unwrap();
        assert_eq!(result.facts[&t].len(), 3);
        assert!(result.goal_derived);
    }

    #[test]
    fn missing_edb_is_empty() {
        // Program mentions relation "F" that the structure lacks.
        let mut b = ProgramBuilder::new();
        b.rule(("T", &["X"]), &[("F", &["X"])]);
        let program = b.finish("T");
        let input = generators::directed_path(3);
        let result = eval_naive(&program, &input);
        assert!(!result.goal_derived);
    }

    #[test]
    fn repeated_variables_in_atoms() {
        // Q :- E(X, X) finds loops only.
        let mut b = ProgramBuilder::new();
        b.rule(("Q", &[]), &[("E", &["X", "X"])]);
        let program = b.finish("Q");
        assert!(!eval_naive(&program, &generators::directed_cycle(3)).goal_derived);
        let voc = generators::digraph_vocabulary();
        let mut sb = cqcs_structures::StructureBuilder::new(voc, 2);
        sb.add_fact("E", &[1, 1]).unwrap();
        assert!(eval_naive(&program, &sb.finish()).goal_derived);
    }

    #[test]
    fn iteration_accounting_is_comparable() {
        // Regression for the E12 accounting mismatch: naive counted
        // its final no-change round while semi-naive skipped its
        // seeding round, so the two `iterations` figures drifted by
        // two. Under the unified every-round-performed convention they
        // coincide on the canonical workloads.
        let program = tc_program();
        // 4-path: edges, length-2, length-3, then one no-change round.
        let input = generators::directed_path(4);
        let naive = eval_naive(&program, &input);
        let semi = eval_semi_naive(&program, &input);
        assert_eq!(naive.iterations, 4);
        assert_eq!(semi.iterations, 4);
        // 3-cycle: edges, length-2, loops, goal Q, then no change.
        let input = generators::directed_cycle(3);
        let naive = eval_naive(&program, &input);
        let semi = eval_semi_naive(&program, &input);
        assert_eq!(naive.iterations, 5);
        assert_eq!(semi.iterations, 5);
    }

    #[test]
    fn semi_naive_matches_naive_on_rho_b() {
        // The delta-range rework must stay pinned to the naive
        // evaluator on the canonical-program workload the benches
        // measure: same facts for every predicate, same goal verdict.
        let program = crate::canonical::canonical_program(&generators::complete_graph(2), 2);
        for seed in 0..6u64 {
            let input = generators::random_digraph(5, 0.3, seed);
            let nv = eval_naive(&program, &input);
            let sn = eval_semi_naive(&program, &input);
            assert_eq!(nv.goal_derived, sn.goal_derived, "seed {seed}");
            for p in 0..program.num_preds() {
                let p = crate::ast::PredId(p as u32);
                assert_eq!(
                    nv.facts.get(&p).cloned().unwrap_or_default(),
                    sn.facts.get(&p).cloned().unwrap_or_default(),
                    "seed {seed} pred {p:?}"
                );
            }
        }
    }

    #[test]
    fn zero_ary_goal_via_semi_naive() {
        let program = tc_program();
        let input = generators::directed_cycle(5);
        let semi = eval_semi_naive(&program, &input);
        assert!(semi.goal_derived);
        assert!(semi.iterations >= 2, "recursion actually iterated");
    }
}

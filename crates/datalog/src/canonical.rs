//! The canonical k-Datalog program ρ_B of Theorem 4.7(2).
//!
//! For a fixed structure `B` and pebble count `k`, ρ_B expresses "given
//! `A`, does the Spoiler win the existential k-pebble game on (A, B)?".
//! Its IDB has one k-ary predicate `T_b` per k-tuple `b ∈ B^k`, read as
//! "the position (x⃗, b⃗) is winning for the Spoiler", plus the 0-ary
//! goal `S`:
//!
//! 1. for every `b` with `b_i ≠ b_j`: `T_b(x'₁,…,x'ₖ) :-` with
//!    `x'_i = x'_j` (the correspondence is not a function);
//! 2. for every symbol `R` and index tuple `(i₁,…,i_m)` with
//!    `(b_{i₁},…,b_{i_m}) ∉ R^B`: `T_b(x₁,…,xₖ) :- R(x_{i₁},…,x_{i_m})`
//!    (the mapping is not a homomorphism);
//! 3. for every `j`: `T_b(x₁,…,xₖ) :- ⋀_{c ∈ B}
//!    T_{b[j←c]}(x₁,…,x_{j−1},y,x_{j+1},…,xₖ)` (the Spoiler re-places
//!    pebble `j` on a new element `y`; whatever `c` the Duplicator
//!    answers, the position stays winning) — note the head variable
//!    `x_j` is range-unrestricted, exactly the active-domain semantics
//!    [`crate::eval`] implements;
//! 4. `S :- ⋀_{b ∈ B^k} T_b(x₁,…,xₖ)` (some placement defeats every
//!    reply).
//!
//! The program has `|B|^k` IDB predicates and `O(|B|^k · (k² + ‖σ‖·kᵐ))`
//! rules — polynomial for fixed `B` and `k`, exactly as the theorem
//! requires. Remark 4.10(1): ρ_B *is* the Feder–Vardi program: if
//! co-CSP(B) is k-Datalog-expressible at all, ρ_B expresses it.

use crate::ast::{Atom, PredId, Program, ProgramBuilder, Rule, VarId};
use cqcs_structures::{Element, Structure};

/// Builds ρ_B for the given template and pebble count.
///
/// # Panics
/// Panics if `k = 0`, or if `|B|^k` would be unreasonably large
/// (> 10⁶ predicates) — the construction is meant for small fixed
/// templates, mirroring its role in the paper.
pub fn canonical_program(b: &Structure, k: usize) -> Program {
    assert!(k >= 1, "at least one pebble");
    let m = b.universe();
    let preds = (m as u64).checked_pow(k as u32).expect("|B|^k overflow");
    assert!(preds <= 1_000_000, "|B|^k = {preds} too large for ρ_B");

    let mut builder = ProgramBuilder::new();
    // Intern EDB predicates with B's vocabulary names.
    let edb: Vec<PredId> = b
        .vocabulary()
        .symbols()
        .map(|(_, name, arity)| builder.pred(name, arity))
        .collect();
    // Intern T_b for every b ∈ B^k, in lexicographic order so that
    // index arithmetic can recover them.
    let t_pred = |builder: &mut ProgramBuilder, tuple: &[u32]| -> PredId {
        let name = format!(
            "T_{}",
            tuple
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join("_")
        );
        builder.pred(&name, k)
    };
    let mut all_b: Vec<Vec<u32>> = Vec::with_capacity(preds as usize);
    {
        let mut tuple = vec![0u32; k];
        loop {
            all_b.push(tuple.clone());
            let mut i = 0;
            loop {
                if i == k {
                    break;
                }
                tuple[i] += 1;
                if (tuple[i] as usize) < m {
                    break;
                }
                tuple[i] = 0;
                i += 1;
            }
            if i == k {
                break;
            }
            if m == 0 {
                break;
            }
        }
        if m == 0 {
            all_b.clear();
        }
    }

    let goal = builder.pred("S", 0);

    for bt in &all_b {
        let tb = t_pred(&mut builder, bt);
        // Rule family 1: non-functional positions.
        for i in 0..k {
            for j in (i + 1)..k {
                if bt[i] != bt[j] {
                    // Head pattern x'_i = x'_j = x_i; variables are
                    // rule-scoped ids: give position p variable p,
                    // except position j reuses i.
                    let args: Vec<VarId> = (0..k)
                        .map(|p| VarId(if p == j { i as u32 } else { p as u32 }))
                        .collect();
                    builder.raw_rule(Rule {
                        head: Atom { pred: tb, args },
                        body: vec![],
                        num_vars: k,
                    });
                }
            }
        }
        // Rule family 2: tuple violations.
        for (sym_idx, (rel, _, arity)) in b.vocabulary().symbols().enumerate() {
            if arity == 0 {
                continue;
            }
            // Every index tuple (i₁..i_m) ∈ [k]^m with the image not in R^B.
            let mut idx = vec![0usize; arity];
            loop {
                let image: Vec<Element> = idx.iter().map(|&i| Element(bt[i])).collect();
                if !b.relation(rel).contains(&image) {
                    let body = vec![Atom {
                        pred: edb[sym_idx],
                        args: idx.iter().map(|&i| VarId(i as u32)).collect(),
                    }];
                    let head = Atom {
                        pred: tb,
                        args: (0..k as u32).map(VarId).collect(),
                    };
                    builder.raw_rule(Rule {
                        head,
                        body,
                        num_vars: k,
                    });
                }
                // Advance idx in [k]^m.
                let mut p = 0;
                loop {
                    if p == arity {
                        break;
                    }
                    idx[p] += 1;
                    if idx[p] < k {
                        break;
                    }
                    idx[p] = 0;
                    p += 1;
                }
                if p == arity {
                    break;
                }
            }
        }
        // Rule family 3: re-place pebble j.
        for j in 0..k {
            // Variables: x_0..x_{k-1} are 0..k-1; y is k.
            let y = VarId(k as u32);
            let body: Vec<Atom> = (0..m as u32)
                .map(|c| {
                    let mut bc = bt.clone();
                    bc[j] = c;
                    let pred = t_pred(&mut builder, &bc);
                    let args: Vec<VarId> = (0..k)
                        .map(|p| if p == j { y } else { VarId(p as u32) })
                        .collect();
                    Atom { pred, args }
                })
                .collect();
            let head = Atom {
                pred: tb,
                args: (0..k as u32).map(VarId).collect(),
            };
            builder.raw_rule(Rule {
                head,
                body,
                num_vars: k + 1,
            });
        }
    }

    // Rule family 4: the goal.
    {
        let body: Vec<Atom> = all_b
            .iter()
            .map(|bt| Atom {
                pred: t_pred(&mut builder, bt),
                args: (0..k as u32).map(VarId).collect(),
            })
            .collect();
        builder.raw_rule(Rule {
            head: Atom {
                pred: goal,
                args: vec![],
            },
            body,
            num_vars: k,
        });
    }

    builder.finish("S")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_naive, eval_semi_naive};
    use crate::validate::datalog_width;
    use cqcs_pebble::spoiler_wins;
    use cqcs_structures::generators;

    #[test]
    fn program_shape_for_k2_on_k2() {
        let b = generators::complete_graph(2);
        let p = canonical_program(&b, 2);
        // 4 T-predicates + E + S.
        assert_eq!(p.num_preds(), 6);
        assert!(p.pred("T_0_1").is_some());
        assert_eq!(p.pred_arity(p.pred("T_0_1").unwrap()), 2);
        assert_eq!(p.pred_arity(p.goal), 0);
    }

    #[test]
    fn width_is_k_plus_one_variable_bodies() {
        // Rule family 3 bodies use k distinct variables; heads use k;
        // family-3 rules have k+1 total (x_j appears only in the head).
        // The paper counts body and head variables separately: both ≤ k.
        let b = generators::complete_graph(2);
        let p = canonical_program(&b, 2);
        assert_eq!(datalog_width(&p), 2);
    }

    /// The headline equivalence of Theorem 4.7(2): bottom-up evaluation
    /// of ρ_B on A derives the goal iff the Spoiler wins the
    /// k-pebble game on (A, B).
    #[test]
    fn rho_b_equals_pebble_game_on_k2() {
        let b = generators::complete_graph(2);
        let program = canonical_program(&b, 2);
        for seed in 0..8u64 {
            let a = generators::random_digraph(4, 0.4, seed);
            let expected = spoiler_wins(&a, &b, 2);
            assert_eq!(
                eval_semi_naive(&program, &a).goal_derived,
                expected,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rho_b_equals_pebble_game_odd_cycles_k3() {
        // With k = 3 on template K2, ρ_B decides 2-colorability
        // (Theorem 4.8/4.9 route), matching the game.
        let b = generators::complete_graph(2);
        let program = canonical_program(&b, 3);
        for n in [3, 4, 5, 6] {
            let a = generators::undirected_cycle(n);
            let expected = spoiler_wins(&a, &b, 3);
            assert_eq!(expected, n % 2 == 1, "sanity: game decides 2-coloring");
            assert_eq!(eval_semi_naive(&program, &a).goal_derived, expected, "C{n}");
        }
    }

    #[test]
    fn rho_b_on_directed_templates() {
        let b = generators::transitive_tournament(2);
        let program = canonical_program(&b, 2);
        for seed in 0..6u64 {
            let a = generators::random_digraph(4, 0.35, seed + 50);
            assert_eq!(
                eval_naive(&program, &a).goal_derived,
                spoiler_wins(&a, &b, 2),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn naive_and_semi_naive_agree_on_rho_b() {
        let b = generators::complete_graph(2);
        let program = canonical_program(&b, 2);
        for seed in 0..5u64 {
            let a = generators::random_digraph(5, 0.3, seed);
            assert_eq!(
                eval_naive(&program, &a).goal_derived,
                eval_semi_naive(&program, &a).goal_derived,
                "seed {seed}"
            );
        }
    }
}

//! Property-based tests (proptest) on the workspace's core invariants.

use cqcs::boolean::booleanize::booleanize;
use cqcs::boolean::relation::BooleanRelation;
use cqcs::boolean::schaefer;
use cqcs::core::{backtracking_search, solve, SearchOptions, Session, Strategy as SolveStrategy};
use cqcs::pebble::consistency::{arc_consistent_domains, refine_domains, refine_domains_reference};
use cqcs::pebble::propagator::Propagator;
use cqcs::structures::homomorphism::{find_homomorphism, homomorphism_exists};
use cqcs::structures::product::{direct_product, projections};
use cqcs::structures::{generators, is_homomorphism, BitSet};
use cqcs::treewidth::bb::{bb_treewidth, elimination_width};
use cqcs::treewidth::exact::{dp_treewidth, exact_treewidth};
use cqcs::treewidth::heuristics::{
    decomposition_from_elimination, min_degree_order, min_fill_order, min_fill_order_reference,
};
use cqcs::treewidth::lower_bounds::{mmd_lower_bound, mmd_plus_lower_bound};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a small random digraph structure.
fn digraph(max_n: usize, max_edges: usize) -> impl Strategy<Value = cqcs::structures::Structure> {
    (
        1..=max_n,
        proptest::collection::vec((0..max_n as u32, 0..max_n as u32), 0..=max_edges),
    )
        .prop_map(|(n, edges)| {
            let voc = generators::digraph_vocabulary();
            let mut b = cqcs::structures::StructureBuilder::new(voc, n);
            for (x, y) in edges {
                let _ = b.add_fact("E", &[x % n as u32, y % n as u32]);
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BitSet behaves like a HashSet<usize>.
    #[test]
    fn bitset_models_hashset(ops in proptest::collection::vec((0usize..96, any::<bool>()), 0..60)) {
        let mut bs = BitSet::new(96);
        let mut hs: HashSet<usize> = HashSet::new();
        for (v, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(v), hs.insert(v));
            } else {
                prop_assert_eq!(bs.remove(v), hs.remove(&v));
            }
        }
        prop_assert_eq!(bs.len(), hs.len());
        let from_bs: HashSet<usize> = bs.iter().collect();
        prop_assert_eq!(from_bs, hs);
    }

    /// The product's universal property: hom(C → A×B) iff hom(C → A)
    /// and hom(C → B); and the projections are homomorphisms.
    #[test]
    fn product_universal_property(
        c in digraph(4, 6),
        a in digraph(3, 5),
        b in digraph(3, 5),
    ) {
        let p = direct_product(&a, &b);
        let (p1, p2) = projections(&a, &b);
        prop_assert!(is_homomorphism(&p1, &p, &a));
        prop_assert!(is_homomorphism(&p2, &p, &b));
        let both = homomorphism_exists(&c, &a) && homomorphism_exists(&c, &b);
        prop_assert_eq!(homomorphism_exists(&c, &p), both);
    }

    /// Booleanization preserves homomorphism existence (Lemma 3.5).
    #[test]
    fn booleanization_preserves_hom(a in digraph(5, 8), b in digraph(4, 7)) {
        prop_assume!(b.universe() >= 1);
        let expected = homomorphism_exists(&a, &b);
        let (ab, bb, info) = booleanize(&a, &b).unwrap();
        prop_assert_eq!(homomorphism_exists(&ab, &bb), expected);
        if expected {
            let hb = find_homomorphism(&ab, &bb).unwrap();
            let decoded = info.decode(hb.as_slice());
            prop_assert!(is_homomorphism(&decoded, &a, &b));
        }
    }

    /// Arc consistency is sound: wiping out a domain proves no hom, and
    /// surviving domains contain every real solution's values.
    #[test]
    fn arc_consistency_sound(a in digraph(5, 8), b in digraph(3, 5)) {
        let ac = arc_consistent_domains(&a, &b);
        match find_homomorphism(&a, &b) {
            Some(h) => {
                prop_assert!(ac.consistent);
                for e in a.elements() {
                    prop_assert!(ac.domains[e.index()].contains(h.apply(e).index()));
                }
            }
            None => { /* AC may or may not detect it — only soundness matters */ }
        }
        if !ac.consistent {
            prop_assert!(!homomorphism_exists(&a, &b));
        }
    }

    /// The auto dispatcher and all-options search agree with the
    /// reference on arbitrary instances.
    #[test]
    fn solvers_agree(a in digraph(5, 8), b in digraph(3, 6)) {
        let expected = homomorphism_exists(&a, &b);
        let sol = solve(&a, &b, SolveStrategy::Auto).unwrap();
        prop_assert_eq!(sol.homomorphism.is_some(), expected);
        let (h, _) = backtracking_search(&a, &b, SearchOptions::default());
        prop_assert_eq!(h.is_some(), expected);
    }

    /// Closure properties of Boolean relations survive classification:
    /// closing any set under ∧ yields a Horn relation, etc.
    #[test]
    fn closures_classify(tuples in proptest::collection::vec(0u64..16, 1..5)) {
        let close = |mut ts: Vec<u64>, f: fn(u64, u64) -> u64| {
            loop {
                let snapshot = ts.clone();
                let mut added = false;
                for &a in &snapshot {
                    for &b in &snapshot {
                        let t = f(a, b);
                        if !ts.contains(&t) {
                            ts.push(t);
                            added = true;
                        }
                    }
                }
                if !added { break; }
            }
            ts
        };
        let horn = BooleanRelation::new(4, close(tuples.clone(), |a, b| a & b)).unwrap();
        prop_assert!(schaefer::is_horn(&horn));
        let dual = BooleanRelation::new(4, close(tuples.clone(), |a, b| a | b)).unwrap();
        prop_assert!(schaefer::is_dual_horn(&dual));
    }

    /// Elimination-order decompositions are always valid, and on small
    /// graphs their width is an upper bound on the exact treewidth.
    #[test]
    fn heuristic_decompositions_valid(a in digraph(8, 14)) {
        let g = cqcs::structures::gaifman_graph(&a);
        for order in [min_degree_order(&g), min_fill_order(&g)] {
            let td = decomposition_from_elimination(&g, &order);
            prop_assert!(td.validate_graph(&g).is_ok());
            prop_assert!(td.validate(&a).is_ok());
            prop_assert!(td.width() >= exact_treewidth(&g));
        }
    }

    /// Homomorphism composition: if h : A→B and g : B→C then
    /// g∘h : A→C.
    #[test]
    fn homomorphisms_compose(a in digraph(4, 6), b in digraph(3, 5), c in digraph(3, 5)) {
        if let (Some(h), Some(g)) = (find_homomorphism(&a, &b), find_homomorphism(&b, &c)) {
            let composed: Vec<_> = a.elements().map(|e| g.apply(h.apply(e))).collect();
            prop_assert!(is_homomorphism(&composed, &a, &c));
        }
    }

    /// Mixed-arity structures (unary + binary + ternary symbols): the
    /// reference search, the option-toggled search, and the auto
    /// dispatcher agree, and any found homomorphism checks out.
    #[test]
    fn solvers_agree_mixed_arity(
        (a, b) in mixed_arity_pair(4, 3, 5),
    ) {
        let expected = homomorphism_exists(&a, &b);
        if let Some(h) = find_homomorphism(&a, &b) {
            prop_assert!(is_homomorphism(h.as_slice(), &a, &b));
        }
        let sol = solve(&a, &b, SolveStrategy::Auto).unwrap();
        prop_assert_eq!(sol.homomorphism.is_some(), expected);
        let (h, _) = backtracking_search(&a, &b, SearchOptions::default());
        prop_assert_eq!(h.is_some(), expected);
        // Arc consistency stays sound off the graph fragment too.
        let ac = arc_consistent_domains(&a, &b);
        if !ac.consistent {
            prop_assert!(!expected);
        }
    }

    /// The incremental propagator is a drop-in for the reference
    /// from-scratch refinement on arbitrary mixed-arity instances and
    /// arbitrary (possibly already restricted) starting domains: the
    /// consistency verdict always agrees, and whenever consistent the
    /// final domains and the deletion count match exactly. (On wipeout
    /// the pruning order, and hence the partially pruned domains, may
    /// legitimately differ.)
    #[test]
    fn propagator_matches_reference_refinement(
        (a, b) in mixed_arity_pair(4, 3, 6),
        masks in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let full = BitSet::full(b.universe());
        let domains: Vec<BitSet> = (0..a.universe())
            .map(|e| {
                let mut d = BitSet::new(b.universe());
                for v in 0..b.universe() {
                    if masks[e % masks.len()] & (1 << (v % 64)) != 0 {
                        d.insert(v);
                    }
                }
                if d.is_empty() { full.clone() } else { d }
            })
            .collect();
        let reference = refine_domains_reference(&a, &b, domains.clone());
        let fast = refine_domains(&a, &b, domains);
        prop_assert_eq!(fast.consistent, reference.consistent);
        if reference.consistent {
            prop_assert_eq!(&fast.domains, &reference.domains);
            prop_assert_eq!(fast.deletions, reference.deletions);
        }
    }

    /// Incremental `assign`/`undo` on the propagator reaches exactly
    /// the fixpoint a from-scratch refinement of the narrowed domains
    /// reaches, and `undo` restores the previous state bit for bit.
    #[test]
    fn propagator_assign_undo_is_exact(
        (a, b) in mixed_arity_pair(4, 3, 6),
        picks in proptest::collection::vec((0usize..8, 0usize..8), 1..4),
    ) {
        let mut prop = Propagator::new(&a, &b);
        if !prop.establish() {
            return Ok(());
        }
        let mut snapshots: Vec<Vec<BitSet>> = vec![prop.domains().to_vec()];
        for (xe, vv) in picks {
            let x = cqcs::structures::Element::new(xe % a.universe());
            let dom = prop.domain(x);
            if dom.is_empty() {
                break;
            }
            let v = dom.iter().nth(vv % dom.len()).unwrap();
            // From-scratch reference on the same narrowing.
            let mut narrowed = prop.domains().to_vec();
            narrowed[x.index()].clear();
            narrowed[x.index()].insert(v);
            let reference = refine_domains_reference(&a, &b, narrowed);
            let ok = prop.assign(x, v);
            prop_assert_eq!(ok, reference.consistent);
            if !ok {
                prop.undo();
                prop_assert_eq!(prop.domains(), &snapshots.last().unwrap()[..]);
                continue;
            }
            prop_assert_eq!(prop.domains(), &reference.domains[..]);
            snapshots.push(prop.domains().to_vec());
        }
        while prop.depth() > 0 {
            prop.undo();
        }
        prop_assert_eq!(prop.domains(), &snapshots[0][..]);
    }

    /// All eight `SearchOptions` combinations agree with the reference
    /// decision procedure on mixed-arity instances, and any witness
    /// they produce is a real homomorphism.
    #[test]
    fn search_option_combos_agree(
        (a, b) in mixed_arity_pair(4, 3, 6),
    ) {
        let expected = homomorphism_exists(&a, &b);
        for mrv in [false, true] {
            for mac in [false, true] {
                for ac_preprocess in [false, true] {
                    let opts = SearchOptions { mrv, mac, ac_preprocess };
                    let (h, stats) = backtracking_search(&a, &b, opts);
                    prop_assert_eq!(h.is_some(), expected, "opts {:?}", opts);
                    if let Some(h) = h {
                        prop_assert!(is_homomorphism(h.as_slice(), &a, &b));
                    }
                    if !expected && (mac || ac_preprocess) {
                        // A refuted MAC/AC run must report its effort.
                        prop_assert!(
                            stats.nodes + stats.backtracks + stats.deletions > 0
                                || a.universe() == 0
                                || b.universe() == 0
                        );
                    }
                }
            }
        }
    }

    /// A session compiled on `B` is a drop-in for one-shot `solve` on
    /// arbitrary mixed-arity instances and *every* strategy: same
    /// verdict, same route, same search statistics, and any witness it
    /// returns is a real homomorphism. Solving twice on one session
    /// changes nothing (template reuse is invisible).
    #[test]
    fn session_is_a_drop_in_for_solve(
        (a, b) in mixed_arity_pair(4, 3, 6),
    ) {
        let session = Session::compile(&b);
        let strategies = [
            SolveStrategy::Auto,
            SolveStrategy::Schaefer,
            SolveStrategy::Booleanize,
            SolveStrategy::Acyclic,
            SolveStrategy::Treewidth,
            SolveStrategy::Generic(SearchOptions::default()),
            SolveStrategy::Generic(SearchOptions {
                mrv: false,
                mac: false,
                ac_preprocess: false,
            }),
        ];
        for strat in strategies {
            let one_shot = solve(&a, &b, strat);
            let first = session.solve_with(&a, strat);
            let second = session.solve_with(&a, strat);
            match (one_shot, first, second) {
                (Ok(o), Ok(s1), Ok(s2)) => {
                    prop_assert_eq!(
                        o.homomorphism.is_some(),
                        s1.homomorphism.is_some(),
                        "verdict, {:?}", strat
                    );
                    prop_assert_eq!(o.route, s1.route, "route, {:?}", strat);
                    prop_assert_eq!(o.stats, s1.stats, "stats, {:?}", strat);
                    if let Some(h) = &s1.homomorphism {
                        prop_assert!(is_homomorphism(h.as_slice(), &a, &b));
                    }
                    // Reuse: the second solve is bit-identical.
                    prop_assert_eq!(
                        s1.homomorphism.as_ref().map(|h| h.as_slice().to_vec()),
                        s2.homomorphism.as_ref().map(|h| h.as_slice().to_vec())
                    );
                    prop_assert_eq!(s1.route, s2.route);
                    prop_assert_eq!(s1.stats, s2.stats);
                }
                (Err(oe), Err(se1), Err(se2)) => {
                    prop_assert_eq!(&oe, &se1, "error, {:?}", strat);
                    prop_assert_eq!(&oe, &se2, "error reuse, {:?}", strat);
                }
                (o, s1, _) => {
                    return Err(TestCaseError::Fail(format!(
                        "ok/err divergence under {strat:?}: one-shot {o:?} vs session {s1:?}"
                    )));
                }
            }
        }
    }

    /// The parallel batch executor is a drop-in for the sequential
    /// batch on arbitrary mixed-arity batches and every thread count,
    /// including more threads than instances: same verdicts, same
    /// routes, same search statistics, and bit-identical witnesses, in
    /// input order. Stress-runnable via `PROPTEST_CASES=5000`.
    #[test]
    fn par_solve_batch_is_bit_identical_to_sequential(
        (b, batch) in mixed_arity_batch(4, 5, 6),
    ) {
        let session = Session::compile(&b);
        let seq = session.solve_batch(&batch);
        prop_assert_eq!(seq.len(), batch.len());
        for threads in [1usize, 2, 4] {
            let par = session.par_solve_batch(&batch, threads);
            prop_assert_eq!(par.len(), seq.len(), "threads {}", threads);
            for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
                prop_assert_eq!(
                    s.homomorphism.as_ref().map(|h| h.as_slice().to_vec()),
                    p.homomorphism.as_ref().map(|h| h.as_slice().to_vec()),
                    "witness {} with {} threads", i, threads
                );
                prop_assert_eq!(s.route, p.route, "route {} with {} threads", i, threads);
                prop_assert_eq!(s.stats, p.stats, "stats {} with {} threads", i, threads);
            }
        }
    }

    /// The explicit-strategy parallel batch matches per-instance
    /// `solve_with` for all 7 strategies — verdict, route, stats, and
    /// witness when every instance succeeds, and the lowest-index error
    /// when a forced route does not apply.
    #[test]
    fn par_solve_batch_with_matches_solve_with_on_every_strategy(
        (b, batch) in mixed_arity_batch(4, 4, 5),
    ) {
        let session = Session::compile(&b);
        let strategies = [
            SolveStrategy::Auto,
            SolveStrategy::Schaefer,
            SolveStrategy::Booleanize,
            SolveStrategy::Acyclic,
            SolveStrategy::Treewidth,
            SolveStrategy::Generic(SearchOptions::default()),
            SolveStrategy::Generic(SearchOptions {
                mrv: false,
                mac: false,
                ac_preprocess: false,
            }),
        ];
        for strat in strategies {
            let seq: Result<Vec<_>, _> = batch
                .iter()
                .map(|a| session.solve_with(a, strat))
                .collect();
            let par = session.par_solve_batch_with(&batch, strat, 3);
            match (seq, par) {
                (Ok(seq), Ok(par)) => {
                    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
                        prop_assert_eq!(
                            s.homomorphism.as_ref().map(|h| h.as_slice().to_vec()),
                            p.homomorphism.as_ref().map(|h| h.as_slice().to_vec()),
                            "witness {} under {:?}", i, strat
                        );
                        prop_assert_eq!(s.route, p.route, "route {} under {:?}", i, strat);
                        prop_assert_eq!(s.stats, p.stats, "stats {} under {:?}", i, strat);
                    }
                }
                (Err(se), Err(pe)) => prop_assert_eq!(se, pe, "error under {:?}", strat),
                (s, p) => {
                    return Err(TestCaseError::Fail(format!(
                        "ok/err divergence under {strat:?}: sequential {s:?} vs parallel {p:?}"
                    )));
                }
            }
        }
    }

    /// Batch containment against one fixed query agrees with the
    /// pairwise route (the cq face of template reuse).
    #[test]
    fn batch_containment_matches_pairwise(edge_lists in proptest::collection::vec(
        proptest::collection::vec((0u32..4, 0u32..4), 1..4), 1..5,
    )) {
        use cqcs::cq::{contained_in, contained_in_batch, par_contained_in_batch, parse_query};
        let as_query = |edges: &[(u32, u32)]| {
            let body: Vec<String> = edges
                .iter()
                .map(|&(x, y)| format!("E(V{x}, V{y})"))
                .collect();
            parse_query(&format!("Q(V{}) :- {}.", edges[0].0, body.join(", "))).unwrap()
        };
        let q2 = as_query(&edge_lists[0]);
        let q1s: Vec<_> = edge_lists.iter().map(|e| as_query(e)).collect();
        let batch = contained_in_batch(&q1s, &q2).unwrap();
        for (q1, got) in q1s.iter().zip(&batch) {
            prop_assert_eq!(*got, contained_in(q1, &q2).unwrap());
        }
        // The work-stealing variant answers identically.
        prop_assert_eq!(par_contained_in_batch(&q1s, &q2, 2).unwrap(), batch);
        // Reflexivity comes out of the batch too: q2 is its own first
        // candidate here only when the head variable matches; just pin
        // q2 ⊑ q2 directly.
        prop_assert!(contained_in_batch(std::slice::from_ref(&q2), &q2).unwrap()[0]);
    }

    /// The product of mixed-arity structures multiplies universes and
    /// relation cardinalities exactly (distinct tuple pairs stay
    /// distinct).
    #[test]
    fn product_cardinalities_mixed_arity(
        (a, b) in mixed_arity_pair(3, 3, 4),
    ) {
        let p = direct_product(&a, &b);
        prop_assert_eq!(p.universe(), a.universe() * b.universe());
        for r in a.vocabulary().iter() {
            let pr = p.vocabulary().lookup(a.vocabulary().name(r)).unwrap();
            let br = b.vocabulary().lookup(a.vocabulary().name(r)).unwrap();
            prop_assert_eq!(
                p.relation(pr).len(),
                a.relation(r).len() * b.relation(br).len()
            );
        }
    }

    /// Differential oracle: the branch-and-bound solver and the subset
    /// DP compute the same treewidth on random graphs (mixed densities
    /// via the free edge count), and the B&B's elimination order
    /// witnesses that width through a validated tree decomposition.
    /// Stress-runnable via `PROPTEST_CASES=5000`.
    #[test]
    fn bb_matches_subset_dp_with_witness(a in digraph(13, 40)) {
        let g = cqcs::structures::gaifman_graph(&a);
        let r = bb_treewidth(&g);
        prop_assert_eq!(r.width, dp_treewidth(&g), "B&B disagrees with DP");
        prop_assert_eq!(r.order.len(), g.len());
        prop_assert_eq!(elimination_width(&g, &r.order), r.width);
        let td = decomposition_from_elimination(&g, &r.order);
        prop_assert!(td.validate_graph(&g).is_ok());
        prop_assert_eq!(td.width(), r.width, "order does not witness the width");
    }

    /// The sandwich every width measure must respect:
    /// `mmd ≤ mmd⁺ ≤ exact ≤ min(min-fill, min-degree)`.
    #[test]
    fn treewidth_sandwich(a in digraph(12, 36)) {
        let g = cqcs::structures::gaifman_graph(&a);
        let exact = exact_treewidth(&g);
        prop_assert!(mmd_lower_bound(&g) <= exact);
        prop_assert!(mmd_plus_lower_bound(&g) <= exact);
        let min_fill = elimination_width(&g, &min_fill_order(&g));
        let min_degree = elimination_width(&g, &min_degree_order(&g));
        prop_assert!(exact <= min_fill.min(min_degree));
    }

    /// The cached-fill min-fill order is *identical* to the
    /// from-scratch reference, not merely equal in width.
    #[test]
    fn min_fill_cache_preserves_order(a in digraph(12, 40)) {
        let g = cqcs::structures::gaifman_graph(&a);
        prop_assert_eq!(min_fill_order(&g), min_fill_order_reference(&g));
    }

    /// The compiled engine is bit-identical to the interpreted
    /// reference spec and the from-scratch reference refinement on
    /// random mixed-arity templates: establishment verdict, domains,
    /// deletion count, and open-frame depth agree after `establish` and
    /// after arbitrary `assign`/`undo` round-trips (including failed
    /// assigns, where even the partially pruned domains must match,
    /// because the compiled engine replays the interpreted pruning
    /// order exactly). Stress-runnable via `PROPTEST_CASES=5000`.
    #[test]
    fn compiled_engine_matches_interpreted_and_reference(
        (a, b) in mixed_arity_pair(4, 3, 6),
        picks in proptest::collection::vec((0usize..8, 0usize..8, any::<bool>()), 0..5),
    ) {
        use cqcs::pebble::program::{ProgramPropagator, PropProgram};
        use cqcs::structures::SupportIndex;
        let program = std::sync::Arc::new(PropProgram::compile(&b, &SupportIndex::build(&b)));
        let mut interp = Propagator::new(&a, &b);
        let mut comp = ProgramPropagator::new(&a, &b, std::sync::Arc::clone(&program));
        let ok = interp.establish();
        prop_assert_eq!(comp.establish(), ok);
        prop_assert_eq!(comp.deletions(), interp.deletions());
        prop_assert_eq!(&comp.domains_vec()[..], interp.domains());
        if ok {
            // Both engines sit on the reference fixpoint.
            let full = vec![BitSet::full(b.universe()); a.universe()];
            let reference = refine_domains_reference(&a, &b, full);
            prop_assert!(reference.consistent);
            prop_assert_eq!(&comp.domains_vec()[..], &reference.domains[..]);
        }
        for (xe, vv, undo_now) in picks {
            if !ok || !interp.is_consistent() {
                break;
            }
            let x = cqcs::structures::Element::new(xe % a.universe());
            let dom = interp.domain(x);
            if dom.is_empty() {
                break;
            }
            let v = dom.iter().nth(vv % dom.len()).unwrap();
            let ok_i = interp.assign(x, v);
            prop_assert_eq!(comp.assign(x, v), ok_i);
            prop_assert_eq!(comp.deletions(), interp.deletions());
            prop_assert_eq!(comp.depth(), interp.depth());
            prop_assert_eq!(&comp.domains_vec()[..], interp.domains());
            if !ok_i || undo_now {
                interp.undo();
                comp.undo();
                prop_assert_eq!(comp.depth(), interp.depth());
                prop_assert_eq!(&comp.domains_vec()[..], interp.domains());
            }
        }
        while interp.depth() > 0 {
            interp.undo();
            comp.undo();
        }
        prop_assert_eq!(comp.depth(), 0);
        prop_assert_eq!(&comp.domains_vec()[..], interp.domains());
    }

    /// Same equivalence on templates past the single-word regime
    /// (universe > 64, often > 64 tuples per relation), forcing the
    /// compiled engine's multi-word kernels rather than its scalar
    /// specialization. Stress-runnable via `PROPTEST_CASES=5000`.
    #[test]
    fn compiled_engine_matches_interpreted_wide(
        a in digraph(6, 12),
        b in wide_digraph(),
        picks in proptest::collection::vec((0usize..8, 0usize..8), 0..3),
    ) {
        use cqcs::pebble::program::{ProgramPropagator, PropProgram};
        use cqcs::structures::SupportIndex;
        let program = std::sync::Arc::new(PropProgram::compile(&b, &SupportIndex::build(&b)));
        let mut interp = Propagator::new(&a, &b);
        let mut comp = ProgramPropagator::new(&a, &b, std::sync::Arc::clone(&program));
        let ok = interp.establish();
        prop_assert_eq!(comp.establish(), ok);
        prop_assert_eq!(comp.deletions(), interp.deletions());
        prop_assert_eq!(&comp.domains_vec()[..], interp.domains());
        for (xe, vv) in picks {
            if !ok || !interp.is_consistent() {
                break;
            }
            let x = cqcs::structures::Element::new(xe % a.universe());
            let dom = interp.domain(x);
            if dom.is_empty() {
                break;
            }
            let v = dom.iter().nth(vv % dom.len()).unwrap();
            prop_assert_eq!(comp.assign(x, v), interp.assign(x, v));
            prop_assert_eq!(comp.deletions(), interp.deletions());
            prop_assert_eq!(&comp.domains_vec()[..], interp.domains());
        }
        while interp.depth() > 0 {
            interp.undo();
            comp.undo();
        }
        prop_assert_eq!(&comp.domains_vec()[..], interp.domains());
    }

    /// `apply_delta` is a drop-in for a fresh bind on the post-delta
    /// instance, for both propagation engines, under arbitrary
    /// add/retract streams on mixed-arity instances: same establish
    /// verdict after every step, and whenever consistent the same
    /// fixpoint domains and deletion count (the repaired trail is the
    /// fixpoint's complement, so equal domains pin the trail as a
    /// set). Covers both the incremental repair and the
    /// too-large-delta / wipeout fallback paths, whichever the
    /// admission rules pick. Stress-runnable via `PROPTEST_CASES=5000`.
    #[test]
    fn apply_delta_matches_fresh_bind_on_both_engines(
        (b, na, script) in delta_stream(4, 4, 5),
    ) {
        use cqcs::pebble::program::{ProgramPropagator, PropProgram};
        use cqcs::structures::SupportIndex;
        let (structures, deltas) = materialize_stream(na, &script);
        let program = std::sync::Arc::new(PropProgram::compile(&b, &SupportIndex::build(&b)));
        let mut interp = Propagator::new(&structures[0], &b);
        let mut comp = ProgramPropagator::new(&structures[0], &b, std::sync::Arc::clone(&program));
        interp.establish();
        comp.establish();
        for (delta, post) in deltas.iter().zip(&structures[1..]) {
            let ok_i = interp.apply_delta(post, delta);
            let ok_c = comp.apply_delta(post, delta);
            let mut fresh = Propagator::new(post, &b);
            let ok_f = fresh.establish();
            prop_assert_eq!(ok_i, ok_f, "interpreted verdict");
            prop_assert_eq!(ok_c, ok_f, "compiled verdict");
            if ok_f {
                prop_assert_eq!(interp.domains(), fresh.domains(), "interpreted domains");
                prop_assert_eq!(&comp.domains_vec()[..], fresh.domains(), "compiled domains");
                prop_assert_eq!(interp.deletions(), fresh.deletions(), "interpreted deletions");
                prop_assert_eq!(comp.deletions(), fresh.deletions(), "compiled deletions");
            }
            prop_assert_eq!(interp.depth(), 0);
            prop_assert_eq!(comp.depth(), 0);
        }
    }

    /// The same pin on a wide template (universe > 64, multi-word
    /// kernels in the compiled engine) under an additive-then-churning
    /// digraph stream. Stress-runnable via `PROPTEST_CASES=5000`.
    #[test]
    fn apply_delta_matches_fresh_bind_wide_template(
        b in wide_digraph(),
        n in 2usize..=6,
        script in proptest::collection::vec(
            proptest::collection::vec((0u32..6, 0u32..6), 1..=3), 1..=6,
        ),
    ) {
        use cqcs::pebble::program::{ProgramPropagator, PropProgram};
        use cqcs::structures::{StructureDelta, SupportIndex};
        let voc = generators::digraph_vocabulary();
        let mut facts: HashSet<Vec<u32>> = HashSet::new();
        let build = |facts: &HashSet<Vec<u32>>| {
            let mut bb = cqcs::structures::StructureBuilder::new(
                std::sync::Arc::clone(&voc), n,
            );
            for t in facts {
                bb.add_fact("E", t).unwrap();
            }
            bb.finish()
        };
        let mut structures = vec![build(&facts)];
        for step in &script {
            for &(x, y) in step {
                let t = vec![x % n as u32, y % n as u32];
                if !facts.insert(t.clone()) {
                    facts.remove(&t);
                }
            }
            structures.push(build(&facts));
        }
        let program = std::sync::Arc::new(PropProgram::compile(&b, &SupportIndex::build(&b)));
        let mut comp = ProgramPropagator::new(&structures[0], &b, std::sync::Arc::clone(&program));
        comp.establish();
        for w in structures.windows(2) {
            let delta = StructureDelta::between(&w[0], &w[1]).unwrap();
            let ok_c = comp.apply_delta(&w[1], &delta);
            let mut fresh = Propagator::new(&w[1], &b);
            let ok_f = fresh.establish();
            prop_assert_eq!(ok_c, ok_f, "wide verdict");
            if ok_f {
                prop_assert_eq!(&comp.domains_vec()[..], fresh.domains(), "wide domains");
                prop_assert_eq!(comp.deletions(), fresh.deletions(), "wide deletions");
            }
        }
    }

    /// A `Session::watch` absorbing an arbitrary add/retract stream
    /// stays pinned to from-scratch `Session::solve` on every
    /// post-delta instance: same verdict, same route, bit-identical
    /// witness, and identical search statistics whenever the watch
    /// reports them (they are absent only on the O(1)
    /// monotone-refutation path, which skips the solve entirely).
    /// Stress-runnable via `PROPTEST_CASES=5000`.
    #[test]
    fn watch_session_stays_pinned_to_fresh_solves(
        (b, na, script) in delta_stream(4, 4, 5),
    ) {
        let (structures, deltas) = materialize_stream(na, &script);
        let session = Session::compile(&b);
        let mut watch = session.watch(&structures[0]);
        for (d, post) in deltas.iter().zip(&structures[1..]) {
            let before = watch.verdict();
            let flip = watch.apply(d).unwrap();
            prop_assert_eq!(flip, (watch.verdict() != before).then_some(watch.verdict()));
            let fresh = session.solve(post);
            prop_assert_eq!(
                watch.solution().homomorphism.as_ref().map(|h| h.as_slice().to_vec()),
                fresh.homomorphism.as_ref().map(|h| h.as_slice().to_vec()),
                "witness"
            );
            prop_assert_eq!(watch.solution().route, fresh.route, "route");
            if watch.solution().stats.is_some() {
                prop_assert_eq!(&watch.solution().stats, &fresh.stats, "stats");
            }
        }
    }

    /// Incremental Datalog (counting + DRed) stays pinned to
    /// from-scratch semi-naive evaluation under arbitrary add/retract
    /// streams on the transitive-closure/cycle program: same goal
    /// verdict and identical IDB fact sets after every step, with
    /// every step absorbed incrementally (the universe never grows, so
    /// the recompute fallback must not fire). Stress-runnable via
    /// `PROPTEST_CASES=5000`.
    #[test]
    fn incremental_datalog_matches_semi_naive(
        n in 2usize..=7,
        script in proptest::collection::vec(
            proptest::collection::vec((0u32..7, 0u32..7), 1..=4), 1..=8,
        ),
    ) {
        use cqcs::datalog::{eval::eval_semi_naive, programs, IncrementalEval, PredId};
        use cqcs::structures::StructureDelta;
        let program = programs::cycle_detection();
        let voc = generators::digraph_vocabulary();
        let mut facts: HashSet<Vec<u32>> = HashSet::new();
        let build = |facts: &HashSet<Vec<u32>>| {
            let mut bb = cqcs::structures::StructureBuilder::new(
                std::sync::Arc::clone(&voc), n,
            );
            for t in facts {
                bb.add_fact("E", t).unwrap();
            }
            bb.finish()
        };
        let mut structures = vec![build(&facts)];
        for step in &script {
            for &(x, y) in step {
                let t = vec![x % n as u32, y % n as u32];
                if !facts.insert(t.clone()) {
                    facts.remove(&t);
                }
            }
            structures.push(build(&facts));
        }
        let mut inc = IncrementalEval::new(&program, &structures[0]);
        for w in structures.windows(2) {
            let delta = StructureDelta::between(&w[0], &w[1]).unwrap();
            let goal = inc.apply_delta(&w[1], &delta);
            let fresh = eval_semi_naive(&program, &w[1]);
            prop_assert_eq!(goal, fresh.goal_derived, "goal verdict");
            for i in 0..program.num_preds() as u32 {
                let p = PredId(i);
                if program.is_idb(p) {
                    prop_assert_eq!(
                        inc.facts().get(&p).cloned().unwrap_or_default(),
                        fresh.facts.get(&p).cloned().unwrap_or_default(),
                        "IDB facts for {}", program.pred_name(p)
                    );
                }
            }
        }
        prop_assert_eq!(inc.stats().full_recomputes, 0);
        prop_assert_eq!(inc.stats().incremental_updates as usize, structures.len() - 1);
    }

    /// Exact treewidth reproduces the textbook values on known
    /// families: paths 1, cycles 2, cliques k-1, grids min(r, c).
    #[test]
    fn exact_treewidth_known_families(n in 3usize..=7, r in 2usize..=3, c in 2usize..=4) {
        let path = cqcs::structures::gaifman_graph(&generators::undirected_path(n));
        prop_assert_eq!(exact_treewidth(&path), 1);
        let cycle = cqcs::structures::gaifman_graph(&generators::undirected_cycle(n));
        prop_assert_eq!(exact_treewidth(&cycle), 2);
        let clique = cqcs::structures::gaifman_graph(&generators::complete_graph(n));
        prop_assert_eq!(exact_treewidth(&clique), n - 1);
        let grid = cqcs::structures::gaifman_graph(&generators::grid_graph(r, c));
        prop_assert_eq!(exact_treewidth(&grid), r.min(c));
    }
}

/// Strategy: a digraph template past the single-word regime — universe
/// in 65..=80 (two domain words) and enough edges that the `E` relation
/// frequently exceeds 64 tuples (two support words).
fn wide_digraph() -> impl Strategy<Value = cqcs::structures::Structure> {
    (
        65usize..=80,
        proptest::collection::vec((0u32..80, 0u32..80), 40..=140),
    )
        .prop_map(|(n, edges)| {
            let voc = generators::digraph_vocabulary();
            let mut b = cqcs::structures::StructureBuilder::new(voc, n);
            for (x, y) in edges {
                let _ = b.add_fact("E", &[x % n as u32, y % n as u32]);
            }
            b.finish()
        })
}

/// One compiled template never rebuilds its support index: across a
/// batch of session solves on every route that touches propagation
/// (the Auto dispatcher's AC prefilter, Generic MAC/AC searches, and
/// index-free Generic searches), the per-thread build counter moves
/// exactly once. Guards the regression where the interpreted engine and
/// the compiled program each lowered their own index for the same `B`.
#[test]
fn support_index_built_once_per_template() {
    use cqcs::structures::support_builds_on_this_thread;
    let b = generators::complete_graph(3);
    let session = Session::compile(&b);
    let batch: Vec<_> = (0..6u64)
        .map(|s| generators::random_graph_nm(10, 20, s))
        .collect();
    let before = support_builds_on_this_thread();
    for a in &batch {
        let _ = session.solve(a);
        let _ = session.solve_with(a, SolveStrategy::Generic(SearchOptions::default()));
        let _ = session.solve_with(
            a,
            SolveStrategy::Generic(SearchOptions {
                mrv: true,
                mac: false,
                ac_preprocess: true,
            }),
        );
        // The index-free search route must not build an index at all.
        let _ = session.solve_with(
            a,
            SolveStrategy::Generic(SearchOptions {
                mrv: true,
                mac: false,
                ac_preprocess: false,
            }),
        );
    }
    let _ = session.solve_batch(&batch);
    assert_eq!(
        support_builds_on_this_thread() - before,
        1,
        "the session must lower exactly one support index per template"
    );
}

/// Known treewidth families pinned through the branch-and-bound oracle
/// (deterministic, not property-sampled — these are the textbook
/// regression anchors for the exact subsystem, several past the subset
/// DP's 24-vertex ceiling).
#[test]
fn bb_treewidth_known_family_regressions() {
    let check = |g: &cqcs::structures::UndirectedGraph, want: usize, what: &str| {
        let r = bb_treewidth(g);
        assert_eq!(r.width, want, "{what}");
        let td = decomposition_from_elimination(g, &r.order);
        td.validate_graph(g).unwrap();
        assert_eq!(td.width(), want, "{what}: order fails to witness");
    };
    use cqcs::structures::{gaifman_graph, UndirectedGraph};
    for n in [4usize, 6, 8] {
        check(
            &gaifman_graph(&generators::complete_graph(n)),
            n - 1,
            &format!("K_{n}"),
        );
    }
    for n in [5usize, 12, 30] {
        check(
            &gaifman_graph(&generators::undirected_cycle(n)),
            2,
            &format!("C_{n}"),
        );
    }
    for n in [10usize, 25, 40] {
        // Random 1-trees are exactly the trees.
        check(
            &UndirectedGraph::from_edges(n, &generators::ktree_edges(n, 1, n as u64)),
            1,
            &format!("tree on {n} vertices"),
        );
    }
    for (rows, cols) in [(2usize, 9usize), (3, 7), (4, 5)] {
        check(
            &gaifman_graph(&generators::grid_graph(rows, cols)),
            rows.min(cols),
            &format!("{rows}×{cols} grid"),
        );
    }
    check(&gaifman_graph(&generators::petersen()), 4, "Petersen");
}

/// Strategy: a template plus a batch of instances over the shared
/// `{U/1, E/2, T/3}` vocabulary — the parallel-batch executor's input
/// shape (batches mix empty, tiny, and propagation-heavy instances, so
/// routes and worker scratch resets vary within one batch).
fn mixed_arity_batch(
    max_nb: usize,
    max_na: usize,
    max_batch: usize,
) -> impl Strategy<
    Value = (
        cqcs::structures::Structure,
        Vec<cqcs::structures::Structure>,
    ),
> {
    let instance = move |max_n: usize| {
        (
            1..=max_n,
            proptest::collection::vec((any::<u8>(), proptest::collection::vec(0u32..8, 3)), 0..=10),
        )
    };
    (
        instance(max_nb),
        proptest::collection::vec(instance(max_na), 0..=max_batch),
    )
        .prop_map(|((nb, tb), instances)| {
            (
                build_mixed_arity(nb, &tb),
                instances
                    .into_iter()
                    .map(|(na, ta)| build_mixed_arity(na, &ta))
                    .collect(),
            )
        })
}

/// Builds one mixed-arity structure over `{U/1, E/2, T/3}`.
fn build_mixed_arity(n: usize, tuples: &[(u8, Vec<u32>)]) -> cqcs::structures::Structure {
    let mut voc = cqcs::structures::Vocabulary::new();
    voc.add("U", 1).unwrap();
    voc.add("E", 2).unwrap();
    voc.add("T", 3).unwrap();
    let voc = voc.into_shared();
    let mut b = cqcs::structures::StructureBuilder::new(voc, n);
    for (which, args) in tuples {
        let name = ["U", "E", "T"][(*which % 3) as usize];
        let arity = (*which % 3) as usize + 1;
        let args: Vec<u32> = args
            .iter()
            .cycle()
            .take(arity)
            .map(|&v| v % n as u32)
            .collect();
        let _ = b.add_fact(name, &args);
    }
    b.finish()
}

/// A [`delta_stream`] sample: the template, the instance universe
/// size, and the toggle script (one list of `{U/1, E/2, T/3}` fact
/// togglings per step).
type DeltaStreamInput = (cqcs::structures::Structure, usize, Vec<Vec<(u8, Vec<u32>)>>);

/// Strategy: a mixed-arity template plus an instance-side add/retract
/// script — a base universe size and a list of steps, each toggling
/// membership of a few `{U/1, E/2, T/3}` facts. Materialized by
/// [`materialize_stream`] into nested structures and valid deltas.
fn delta_stream(
    max_nb: usize,
    max_na: usize,
    max_steps: usize,
) -> impl Strategy<Value = DeltaStreamInput> {
    (
        (
            1..=max_nb,
            proptest::collection::vec((any::<u8>(), proptest::collection::vec(0u32..8, 3)), 0..=12),
        ),
        1..=max_na,
        proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), proptest::collection::vec(0u32..8, 3)), 1..=4),
            1..=max_steps,
        ),
    )
        .prop_map(|((nb, tb), na, script)| (build_mixed_arity(nb, &tb), na, script))
}

/// Plays a [`delta_stream`] script: each step toggles its facts in a
/// running fact set, yielding the structure after every step and the
/// exact `StructureDelta` between consecutive states.
fn materialize_stream(
    n: usize,
    script: &[Vec<(u8, Vec<u32>)>],
) -> (
    Vec<cqcs::structures::Structure>,
    Vec<cqcs::structures::StructureDelta>,
) {
    let mut facts: HashSet<(usize, Vec<u32>)> = HashSet::new();
    let build = |facts: &HashSet<(usize, Vec<u32>)>| {
        let tuples: Vec<(u8, Vec<u32>)> = facts
            .iter()
            .map(|(which, args)| (*which as u8, args.clone()))
            .collect();
        build_mixed_arity(n, &tuples)
    };
    let mut structures = vec![build(&facts)];
    for step in script {
        for (which, args) in step {
            let which = (*which % 3) as usize;
            let args: Vec<u32> = args
                .iter()
                .cycle()
                .take(which + 1)
                .map(|&v| v % n as u32)
                .collect();
            let key = (which, args);
            if !facts.insert(key.clone()) {
                facts.remove(&key);
            }
        }
        structures.push(build(&facts));
    }
    let deltas = structures
        .windows(2)
        .map(|w| cqcs::structures::StructureDelta::between(&w[0], &w[1]).unwrap())
        .collect();
    (structures, deltas)
}

/// Strategy: a pair of structures over a shared vocabulary
/// `{U/1, E/2, T/3}`, hitting code paths the digraph-only strategies
/// cannot (unary constraints, ternary constraint propagation).
fn mixed_arity_pair(
    max_na: usize,
    max_nb: usize,
    max_tuples: usize,
) -> impl Strategy<Value = (cqcs::structures::Structure, cqcs::structures::Structure)> {
    (
        1..=max_na,
        proptest::collection::vec((any::<u8>(), proptest::collection::vec(0u32..8, 3)), 0..=12),
        1..=max_nb,
        proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(0u32..8, 3)),
            0..=max_tuples * 3,
        ),
    )
        .prop_map(move |(na, ta, nb, tb)| (build_mixed_arity(na, &ta), build_mixed_arity(nb, &tb)))
}

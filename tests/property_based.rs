//! Property-based tests (proptest) on the workspace's core invariants.

use cqcs::boolean::booleanize::booleanize;
use cqcs::boolean::relation::BooleanRelation;
use cqcs::boolean::schaefer;
use cqcs::core::{backtracking_search, solve, SearchOptions, Strategy as SolveStrategy};
use cqcs::pebble::consistency::arc_consistent_domains;
use cqcs::structures::homomorphism::{find_homomorphism, homomorphism_exists};
use cqcs::structures::product::{direct_product, projections};
use cqcs::structures::{generators, is_homomorphism, BitSet};
use cqcs::treewidth::exact::exact_treewidth;
use cqcs::treewidth::heuristics::{
    decomposition_from_elimination, min_degree_order, min_fill_order,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a small random digraph structure.
fn digraph(max_n: usize, max_edges: usize) -> impl Strategy<Value = cqcs::structures::Structure> {
    (1..=max_n, proptest::collection::vec((0..max_n as u32, 0..max_n as u32), 0..=max_edges))
        .prop_map(|(n, edges)| {
            let voc = generators::digraph_vocabulary();
            let mut b = cqcs::structures::StructureBuilder::new(voc, n);
            for (x, y) in edges {
                let _ = b.add_fact("E", &[x % n as u32, y % n as u32]);
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BitSet behaves like a HashSet<usize>.
    #[test]
    fn bitset_models_hashset(ops in proptest::collection::vec((0usize..96, any::<bool>()), 0..60)) {
        let mut bs = BitSet::new(96);
        let mut hs: HashSet<usize> = HashSet::new();
        for (v, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(v), hs.insert(v));
            } else {
                prop_assert_eq!(bs.remove(v), hs.remove(&v));
            }
        }
        prop_assert_eq!(bs.len(), hs.len());
        let from_bs: HashSet<usize> = bs.iter().collect();
        prop_assert_eq!(from_bs, hs);
    }

    /// The product's universal property: hom(C → A×B) iff hom(C → A)
    /// and hom(C → B); and the projections are homomorphisms.
    #[test]
    fn product_universal_property(
        c in digraph(4, 6),
        a in digraph(3, 5),
        b in digraph(3, 5),
    ) {
        let p = direct_product(&a, &b);
        let (p1, p2) = projections(&a, &b);
        prop_assert!(is_homomorphism(&p1, &p, &a));
        prop_assert!(is_homomorphism(&p2, &p, &b));
        let both = homomorphism_exists(&c, &a) && homomorphism_exists(&c, &b);
        prop_assert_eq!(homomorphism_exists(&c, &p), both);
    }

    /// Booleanization preserves homomorphism existence (Lemma 3.5).
    #[test]
    fn booleanization_preserves_hom(a in digraph(5, 8), b in digraph(4, 7)) {
        prop_assume!(b.universe() >= 1);
        let expected = homomorphism_exists(&a, &b);
        let (ab, bb, info) = booleanize(&a, &b).unwrap();
        prop_assert_eq!(homomorphism_exists(&ab, &bb), expected);
        if expected {
            let hb = find_homomorphism(&ab, &bb).unwrap();
            let decoded = info.decode(hb.as_slice());
            prop_assert!(is_homomorphism(&decoded, &a, &b));
        }
    }

    /// Arc consistency is sound: wiping out a domain proves no hom, and
    /// surviving domains contain every real solution's values.
    #[test]
    fn arc_consistency_sound(a in digraph(5, 8), b in digraph(3, 5)) {
        let ac = arc_consistent_domains(&a, &b);
        match find_homomorphism(&a, &b) {
            Some(h) => {
                prop_assert!(ac.consistent);
                for e in a.elements() {
                    prop_assert!(ac.domains[e.index()].contains(h.apply(e).index()));
                }
            }
            None => { /* AC may or may not detect it — only soundness matters */ }
        }
        if !ac.consistent {
            prop_assert!(!homomorphism_exists(&a, &b));
        }
    }

    /// The auto dispatcher and all-options search agree with the
    /// reference on arbitrary instances.
    #[test]
    fn solvers_agree(a in digraph(5, 8), b in digraph(3, 6)) {
        let expected = homomorphism_exists(&a, &b);
        let sol = solve(&a, &b, SolveStrategy::Auto).unwrap();
        prop_assert_eq!(sol.homomorphism.is_some(), expected);
        let (h, _) = backtracking_search(&a, &b, SearchOptions::default());
        prop_assert_eq!(h.is_some(), expected);
    }

    /// Closure properties of Boolean relations survive classification:
    /// closing any set under ∧ yields a Horn relation, etc.
    #[test]
    fn closures_classify(tuples in proptest::collection::vec(0u64..16, 1..5)) {
        let close = |mut ts: Vec<u64>, f: fn(u64, u64) -> u64| {
            loop {
                let snapshot = ts.clone();
                let mut added = false;
                for &a in &snapshot {
                    for &b in &snapshot {
                        let t = f(a, b);
                        if !ts.contains(&t) {
                            ts.push(t);
                            added = true;
                        }
                    }
                }
                if !added { break; }
            }
            ts
        };
        let horn = BooleanRelation::new(4, close(tuples.clone(), |a, b| a & b)).unwrap();
        prop_assert!(schaefer::is_horn(&horn));
        let dual = BooleanRelation::new(4, close(tuples.clone(), |a, b| a | b)).unwrap();
        prop_assert!(schaefer::is_dual_horn(&dual));
    }

    /// Elimination-order decompositions are always valid, and on small
    /// graphs their width is an upper bound on the exact treewidth.
    #[test]
    fn heuristic_decompositions_valid(a in digraph(8, 14)) {
        let g = cqcs::structures::gaifman_graph(&a);
        for order in [min_degree_order(&g), min_fill_order(&g)] {
            let td = decomposition_from_elimination(&g, &order);
            prop_assert!(td.validate_graph(&g).is_ok());
            prop_assert!(td.validate(&a).is_ok());
            prop_assert!(td.width() >= exact_treewidth(&g));
        }
    }

    /// Homomorphism composition: if h : A→B and g : B→C then
    /// g∘h : A→C.
    #[test]
    fn homomorphisms_compose(a in digraph(4, 6), b in digraph(3, 5), c in digraph(3, 5)) {
        if let (Some(h), Some(g)) = (find_homomorphism(&a, &b), find_homomorphism(&b, &c)) {
            let composed: Vec<_> = a.elements().map(|e| g.apply(h.apply(e))).collect();
            prop_assert!(is_homomorphism(&composed, &a, &c));
        }
    }
}

//! Integration tests: the paper's claims, checked across crate
//! boundaries.

use cqcs::boolean::booleanize::booleanize;
use cqcs::boolean::schaefer::SchaeferClass;
use cqcs::boolean::uniform::schaefer_classes;
use cqcs::core::{solve, Strategy};
use cqcs::cq::{canonical_databases, canonical_query, contained_in, evaluate, parse_query};
use cqcs::datalog::{canonical_program, eval_semi_naive};
use cqcs::pebble::{game::duplicator_wins, spoiler_wins};
use cqcs::structures::homomorphism::homomorphism_exists;
use cqcs::structures::{generators, Element};
use cqcs::treewidth::dp::homomorphism_via_treewidth;
use cqcs::treewidth::fo::{evaluate as fo_eval, structure_to_fo};
use cqcs::treewidth::heuristics::min_fill_decomposition;

/// Theorem 2.1 (Chandra–Merlin): the three formulations of containment
/// coincide — (i) Q1 ⊑ Q2, via (ii) the distinguished tuple being in
/// Q2(D_{Q1}), via (iii) hom(D_{Q2} → D_{Q1}).
#[test]
fn theorem_2_1_three_formulations() {
    let pairs = [
        ("Q(X) :- E(X, A), E(A, B), E(B, X).", "Q(X) :- E(X, A)."),
        (
            "Q(X) :- E(X, A), E(A, X).",
            "Q(X) :- E(X, A), E(A, B), E(B, X).",
        ),
        ("Q :- E(A, B), E(B, C), E(C, A).", "Q :- E(A, B)."),
        ("Q(X, Y) :- E(X, Y).", "Q(Y, X) :- E(X, Y)."),
        ("Q :- E(A, B), E(B, A).", "Q :- E(A, A)."),
    ];
    for (l, r) in pairs {
        let q1 = parse_query(l).unwrap();
        let q2 = parse_query(r).unwrap();
        let (d1, d2) = canonical_databases(&q1, &q2).unwrap();
        // (iii) homomorphism formulation (reference search).
        let hom = homomorphism_exists(&d2.database, &d1.database);
        // (i) containment through the dispatcher.
        let cont = contained_in(&q1, &q2).unwrap();
        // (ii) evaluation formulation.
        let answers = evaluate(&q2, &d1.database).unwrap();
        let eval_says = if q1.head.is_empty() {
            !answers.is_empty()
        } else {
            let target: Vec<Element> = q1
                .head
                .iter()
                .map(|h| Element::new(d1.variables.iter().position(|v| v == h).unwrap()))
                .collect();
            answers.contains(&target)
        };
        assert_eq!(hom, cont, "{l} ⊑ {r}");
        assert_eq!(hom, eval_says, "{l} ⊑ {r}");
    }
}

/// §2's reduction the other way: hom(A → B) iff Q_B ⊑ Q_A.
#[test]
fn homomorphism_reduces_to_containment() {
    for seed in 0..10u64 {
        let a = generators::random_digraph(4, 0.4, seed);
        let b = generators::random_digraph(3, 0.5, seed + 31);
        let qa = canonical_query(&a);
        let qb = canonical_query(&b);
        assert_eq!(
            homomorphism_exists(&a, &b),
            contained_in(&qb, &qa).unwrap(),
            "seed {seed}"
        );
    }
}

/// Lemma 3.5 + Example 3.8, end to end through the dispatcher: CSP(C4)
/// is solved polynomially via the affine Booleanization, and the
/// answers match brute force.
#[test]
fn csp_c4_via_booleanization() {
    let c4 = generators::directed_cycle(4);
    let (_, bb, _) = booleanize(&c4, &c4).unwrap();
    let classes = schaefer_classes(&bb).unwrap();
    assert!(classes.contains(SchaeferClass::Affine));
    for seed in 0..10u64 {
        let a = generators::random_digraph(5, 0.3, seed);
        let expected = homomorphism_exists(&a, &c4);
        let sol = solve(&a, &c4, Strategy::Auto).unwrap();
        assert_eq!(sol.homomorphism.is_some(), expected, "seed {seed}");
    }
}

/// Theorem 4.7(2) + 4.8 across crates: bottom-up evaluation of ρ_B
/// agrees with the pebble game, and (for K2 with 3 pebbles, whose
/// co-CSP is 3-Datalog-expressible) with homomorphism existence.
#[test]
fn rho_b_pebble_game_and_hom_coincide() {
    let k2 = generators::complete_graph(2);
    let program = canonical_program(&k2, 3);
    for seed in 0..6u64 {
        let a = generators::random_graph_nm(6, 7, seed);
        let rho = eval_semi_naive(&program, &a).goal_derived;
        let game = spoiler_wins(&a, &k2, 3);
        let hom = homomorphism_exists(&a, &k2);
        assert_eq!(rho, game, "Theorem 4.7(2), seed {seed}");
        assert_eq!(game, !hom, "Theorem 4.8 on K2/k=3, seed {seed}");
    }
}

/// Theorem 4.5/4.8 soundness frontier: the Duplicator always survives
/// when a homomorphism exists; the converse fails outside the Datalog
/// class (K4 vs K3).
#[test]
fn pebble_game_soundness_and_incompleteness() {
    for seed in 0..8u64 {
        let a = generators::random_digraph(5, 0.35, seed);
        let b = generators::random_digraph(4, 0.35, seed + 77);
        if homomorphism_exists(&a, &b) {
            for k in 1..=3 {
                assert!(duplicator_wins(&a, &b, k), "seed {seed} k {k}");
            }
        }
    }
    let k4 = generators::complete_graph(4);
    let k3 = generators::complete_graph(3);
    assert!(duplicator_wins(&k4, &k3, 3) && !homomorphism_exists(&k4, &k3));
}

/// Theorem 5.4 + Lemma 5.2 across crates: the DP and the ∃FO^{k+1}
/// evaluation agree with the reference on bounded-treewidth inputs, and
/// the formula really uses at most k+1 variable slots.
#[test]
fn treewidth_dp_and_fo_agree() {
    for seed in 0..8u64 {
        let a = generators::partial_ktree(8, 2, 0.8, seed);
        let b = generators::random_digraph(4, 0.4, seed + 11);
        let expected = homomorphism_exists(&a, &b);
        let (h, width) = homomorphism_via_treewidth(&a, &b);
        assert_eq!(h.is_some(), expected, "seed {seed}");
        assert!(width <= 2);
        let td = min_fill_decomposition(&cqcs::structures::gaifman_graph(&a));
        let q = structure_to_fo(&a, &td).unwrap();
        assert!(q.num_slots <= 3, "Lemma 5.2: k+1 slots");
        assert_eq!(fo_eval(&q, &b), expected, "seed {seed}");
    }
}

/// §2's non-uniformity example: CSP(cliques, graphs) is the clique
/// problem — every fixed right side is easy, the uniform problem is
/// the hard direction. We check the reductions line up on small cases.
#[test]
fn clique_non_uniformity_example() {
    let g = generators::random_graph_nm(8, 20, 3);
    // hom(K_k → G) = "G has a k-clique".
    let mut max_clique = 0;
    for k in 2..=5 {
        if homomorphism_exists(&generators::complete_graph(k), &g) {
            max_clique = k;
        }
    }
    // Brute-force the max clique for comparison.
    let e = g.vocabulary().lookup("E").unwrap();
    let mut best = 1;
    for mask in 0u32..(1 << 8) {
        let members: Vec<u32> = (0..8).filter(|&i| mask & (1 << i) != 0).collect();
        let is_clique = members.iter().enumerate().all(|(i, &u)| {
            members[i + 1..]
                .iter()
                .all(|&v| g.relation(e).contains(&[Element(u), Element(v)]))
        });
        if is_clique {
            best = best.max(members.len());
        }
    }
    assert_eq!(max_clique, best.min(5));
}

/// The uniform dispatcher never disagrees with the reference search.
#[test]
fn dispatcher_correct_on_mixed_workload() {
    let mixed: Vec<(cqcs::structures::Structure, cqcs::structures::Structure)> = vec![
        (
            generators::undirected_cycle(7),
            generators::complete_graph(2),
        ),
        (
            generators::undirected_cycle(8),
            generators::complete_graph(2),
        ),
        (generators::directed_cycle(9), generators::directed_cycle(3)),
        (
            generators::directed_path(5),
            generators::transitive_tournament(4),
        ),
        (
            generators::partial_ktree(9, 2, 0.8, 1),
            generators::complete_graph(3),
        ),
        (
            generators::random_graph_nm(8, 16, 2),
            generators::complete_graph(3),
        ),
        (generators::grid_graph(2, 4), generators::complete_graph(2)),
    ];
    for (a, b) in &mixed {
        let expected = homomorphism_exists(a, b);
        let sol = solve(a, b, Strategy::Auto).unwrap();
        assert_eq!(
            sol.homomorphism.is_some(),
            expected,
            "route {:?}",
            sol.route
        );
        if let Some(h) = &sol.homomorphism {
            assert!(cqcs::structures::is_homomorphism(h.as_slice(), a, b));
        }
    }
}

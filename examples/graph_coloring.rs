//! Graph coloring as CSP(K_k): the paper's running family of examples.
//!
//! * `CSP(K₂)` (2-coloring) is tractable three different ways: Schaefer
//!   (the Booleanized template is bijunctive *and* affine, Example
//!   3.7), the 3-pebble game (co-CSP(K₂) is 3-Datalog-expressible), and
//!   the non-2-colorability Datalog program of §4.1.
//! * `CSP(K₃)` (3-coloring) is NP-complete (Hell–Nešetřil): the pebble
//!   game turns incomplete and the solver falls back to search.
//!
//! Run with `cargo run --example graph_coloring`.

use cqcs::core::{solve, Strategy};
use cqcs::datalog::{eval_semi_naive, programs};
use cqcs::pebble::{pebble_filter, PebbleOutcome};
use cqcs::structures::generators;

fn main() {
    let k2 = generators::complete_graph(2);
    let k3 = generators::complete_graph(3);

    println!("graph            | 2-col | pebble k=3 | Datalog ¬2col | 3-col");
    println!("-----------------+-------+------------+---------------+------");
    let program = programs::non_two_colorability_4datalog();
    for (name, g) in [
        ("C6 (even cycle)", generators::undirected_cycle(6)),
        ("C7 (odd cycle)", generators::undirected_cycle(7)),
        ("Petersen-ish", generators::random_graph_nm(10, 15, 4)),
        ("K4", generators::complete_graph(4)),
    ] {
        // Route 1: the uniform solver (Schaefer for K2, search for K3).
        let two = solve(&g, &k2, Strategy::Auto)
            .unwrap()
            .homomorphism
            .is_some();
        let three = solve(&g, &k3, Strategy::Auto)
            .unwrap()
            .homomorphism
            .is_some();
        // Route 2: the existential 3-pebble game (complete for K2).
        let game = match pebble_filter(&g, &k2, 3) {
            PebbleOutcome::DuplicatorWins => true,
            PebbleOutcome::SpoilerWins => false,
        };
        // Route 3: the §4.1 Datalog program for NON-2-colorability.
        let datalog_no = eval_semi_naive(&program, &g).goal_derived;
        assert_eq!(
            two, game,
            "Theorem 4.8: the 3-pebble game decides 2-coloring"
        );
        assert_eq!(two, !datalog_no, "the Datalog program agrees");
        println!(
            "{name:17}| {two:5} | {game:10} | {:13} | {three}",
            datalog_no
        );
    }

    // The incompleteness frontier: K4 vs K3 fools the 3-pebble game.
    println!("\nIncompleteness outside the Datalog class (K4 → K3):");
    let verdict = pebble_filter(&generators::complete_graph(4), &k3, 3);
    let truth = solve(&generators::complete_graph(4), &k3, Strategy::Auto)
        .unwrap()
        .homomorphism
        .is_some();
    println!("  3-pebble game says: {verdict:?}   truth: hom exists = {truth}");

    // A coloring witness, extracted.
    let g = generators::random_graph_nm(9, 12, 11);
    if let Some(h) = solve(&g, &k3, Strategy::Auto).unwrap().homomorphism {
        let colors: Vec<u32> = h.as_slice().iter().map(|e| e.0).collect();
        println!("\n3-coloring of a random 9-vertex graph: {colors:?}");
        let e = g.vocabulary().lookup("E").unwrap();
        for t in g.relation(e).iter() {
            assert_ne!(colors[t[0].index()], colors[t[1].index()]);
        }
        println!("(verified proper)");
    }
}

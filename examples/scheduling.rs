//! Scheduling as constraint satisfaction — one of the AI motivations
//! the paper cites (§1): variables, values, constraints; solved by
//! encoding into the homomorphism problem.
//!
//! Scenario: assign time slots to exams so that exams sharing students
//! get different slots, some exams must precede others, and a few
//! rooms/slots are off-limits for specific exams.
//!
//! Run with `cargo run --example scheduling`.

use cqcs::core::{analyze, solve, Strategy};
use cqcs::structures::{Constraint, CspInstance};

const EXAMS: [&str; 6] = [
    "algebra",
    "biology",
    "chemistry",
    "databases",
    "english",
    "french",
];
const SLOTS: [&str; 4] = ["mon-am", "mon-pm", "tue-am", "tue-pm"];

fn main() {
    let mut csp = CspInstance::new(EXAMS.len(), SLOTS.len());

    // Conflicts: exams sharing students need different slots.
    let neq: Vec<(usize, usize)> = (0..SLOTS.len())
        .flat_map(|a| (0..SLOTS.len()).map(move |b| (a, b)))
        .filter(|&(a, b)| a != b)
        .collect();
    let conflicts = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (1, 5)];
    for &(x, y) in &conflicts {
        csp.add_binary(x, y, &neq).unwrap();
    }

    // Precedences: algebra before databases, biology before english.
    let lt: Vec<(usize, usize)> = (0..SLOTS.len())
        .flat_map(|a| (0..SLOTS.len()).map(move |b| (a, b)))
        .filter(|&(a, b)| a < b)
        .collect();
    csp.add_binary(0, 3, &lt).unwrap();
    csp.add_binary(1, 4, &lt).unwrap();

    // Availability: french cannot be on Monday; chemistry needs morning.
    csp.set_domain(5, vec![2, 3]).unwrap();
    csp.set_domain(2, vec![0, 2]).unwrap();

    // A ternary fairness constraint: the three morning-heavy exams may
    // not all land on the same day (demonstrates non-binary scopes).
    let same_day = |s: usize| s / 2;
    let allowed: Vec<Vec<usize>> = (0..SLOTS.len().pow(3))
        .map(|i| vec![i % 4, (i / 4) % 4, (i / 16) % 4])
        .filter(|t| !(same_day(t[0]) == same_day(t[1]) && same_day(t[1]) == same_day(t[2])))
        .collect();
    csp.add_constraint(Constraint::new(vec![0, 2, 4], allowed).unwrap())
        .unwrap();

    // The classic AI formulation…
    println!(
        "{} exams, {} slots, {} constraints",
        EXAMS.len(),
        SLOTS.len(),
        csp.constraints().len()
    );

    // …is exactly a homomorphism instance (the paper's §2 observation).
    let (a, b) = csp.to_structures();
    println!(
        "as structures: |A| = {} (variables), |B| = {} (values), ‖A‖ = {}, ‖B‖ = {}",
        a.universe(),
        b.universe(),
        a.size(),
        b.size()
    );
    println!("\nanalysis:\n{}\n", analyze(&a, &b));

    let sol = solve(&a, &b, Strategy::Auto).unwrap();
    match &sol.homomorphism {
        Some(h) => {
            println!("schedule found via route {:?}:", sol.route);
            for (i, exam) in EXAMS.iter().enumerate() {
                let slot = h.apply(cqcs::structures::Element::new(i)).index();
                println!("  {exam:10} → {}", SLOTS[slot]);
            }
            let assignment: Vec<usize> = h.as_slice().iter().map(|e| e.index()).collect();
            assert!(
                csp.check(&assignment),
                "solver output violates a constraint"
            );
        }
        None => println!("no feasible schedule"),
    }

    // Tighten until infeasible: every exam conflicts with every other.
    let mut impossible = csp.clone();
    for x in 0..EXAMS.len() {
        for y in (x + 1)..EXAMS.len() {
            impossible.add_binary(x, y, &neq).unwrap();
        }
    }
    let (a2, b2) = impossible.to_structures();
    let sol2 = solve(&a2, &b2, Strategy::Auto).unwrap();
    println!(
        "\n6 mutually conflicting exams into 4 slots: {}",
        if sol2.homomorphism.is_some() {
            "feasible?!"
        } else {
            "infeasible (pigeonhole)"
        }
    );
    assert!(sol2.homomorphism.is_none());
}

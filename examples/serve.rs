//! Run a template server and drive it in-process.
//!
//! The real deployment runs the `cqcs-serve` binary and connects from
//! other processes; this example keeps both ends in one program so
//! `cargo run --example serve` is self-contained. It binds an
//! ephemeral port, registers two templates, and shows the registry and
//! coalescing statistics the server exposes over `Status`.

use cqcs::net::client::Client;
use cqcs::net::server::{Server, ServerConfig};
use cqcs::structures::generators;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small coalesce window: concurrent solves on the same template
    // are merged into one shared batch-executor pass.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            coalesce_window: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )?;
    println!("serving on {}", server.local_addr());

    let mut client = Client::connect(server.local_addr())?;

    // Register once, solve many: the server compiles K3 a single time
    // and every request (from any connection) reuses the compiled
    // propagation program.
    let k3 = client.register_template(&generators::complete_graph(3))?;
    let k2 = client.register_template(&generators::complete_graph(2))?;

    for n in [4, 5, 6, 7] {
        let sol = client.solve(k3, &generators::undirected_cycle(n))?;
        println!(
            "C{n} → K3: {} (route {:?})",
            if sol.homomorphism.is_some() {
                "3-colorable"
            } else {
                "not 3-colorable"
            },
            sol.route,
        );
    }
    // Even cycles are 2-colorable, odd ones are not.
    for n in [4, 5] {
        let sol = client.solve(k2, &generators::undirected_cycle(n))?;
        println!("C{n} → K2: {}", sol.homomorphism.is_some());
    }

    // Containment queries ride the same connection.
    let contained = client.containment("Q(X) :- E(X, Y), E(Y, X).", "Q(X) :- E(X, Y).")?;
    println!("symmetric-edge query ⊑ edge query: {contained}");

    let status = client.status()?;
    println!(
        "server answered {} requests, {} solves in {} batches, {} templates resident",
        status.requests, status.solves, status.batches, status.templates
    );

    server.shutdown();
    println!("drained and shut down");
    Ok(())
}

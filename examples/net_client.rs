//! Concurrent clients sharing one server: coalescing and pipelining.
//!
//! Four client threads hammer the same registered template at once,
//! then a single connection pipelines a batch at depth 8. The server's
//! coalescer merges concurrent (and in-flight-window) requests into
//! shared `par_solve_batch` passes — visible in the
//! `max_coalesced_jobs` statistic — while every response stays
//! bit-identical to a direct in-process solve, which this example
//! checks.

use cqcs::core::Session;
use cqcs::net::client::Client;
use cqcs::net::codec::solutions_identical;
use cqcs::net::server::{Server, ServerConfig};
use cqcs::structures::generators;
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            coalesce_window: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr();
    let template = generators::complete_graph(3);
    let id = Client::connect(addr)?.register_template(&template)?;

    let clients = 4;
    let per_client = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|ci| {
            let template = template.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let direct = Session::compile(&template);
                barrier.wait();
                let mut agree = 0;
                for ri in 0..per_client {
                    let a = generators::random_graph_nm(8, 14, (ci * per_client + ri) as u64);
                    let over_wire = c.solve(id, &a).expect("solve");
                    if solutions_identical(&over_wire, &direct.solve(&a)) {
                        agree += 1;
                    }
                }
                agree
            })
        })
        .collect();

    let agreements: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let total = clients * per_client;
    println!("{agreements}/{total} networked solutions bit-identical to direct solves");

    let status = Client::connect(addr)?.status()?;
    println!(
        "{} solves ran in {} executor batches; up to {} jobs coalesced into one pass",
        status.solves, status.batches, status.max_coalesced_jobs
    );
    assert_eq!(agreements, total);

    // Pipelining: one connection, eight requests in flight. The window
    // travels as one buffered write, the server coalesces it into few
    // batches, and correlation ids bring the answers back in
    // submission order.
    let mut c = Client::connect(addr)?;
    let direct = Session::compile(&template);
    let instances: Vec<_> = (0..16)
        .map(|s| generators::random_graph_nm(8, 14, 1000 + s))
        .collect();
    let piped = c.solve_pipelined(id, &instances, 8)?;
    let piped_agree = piped
        .iter()
        .zip(&instances)
        .filter(|(sol, a)| solutions_identical(sol, &direct.solve(a)))
        .count();
    println!(
        "pipelined depth 8: {piped_agree}/{} in-order solutions bit-identical to direct solves",
        instances.len()
    );
    assert_eq!(piped_agree, instances.len());

    server.shutdown();
    Ok(())
}

//! Query optimization with containment: the database motivation from
//! the paper's introduction.
//!
//! A query optimizer holds a set of *materialized views*; an incoming
//! query that is **contained in** a view can be answered from the
//! view's (smaller) extent, and an incoming query **equivalent to** a
//! cheaper one can be rewritten outright. Both tests are conjunctive-
//! query containment — NP-complete in general (Chandra–Merlin), but the
//! workspace solver exploits every tractable case from the paper.
//!
//! Run with `cargo run --example query_optimization`.

use cqcs::cq::{
    contained_in, equivalent, evaluate, is_two_atom, minimize, parse_query, two_atom_containment,
};
use cqcs::structures::{Element, StructureBuilder, Vocabulary};

fn main() {
    // Schema: Author(person, paper), Cites(paper, paper).
    // A small bibliography database.
    let voc = Vocabulary::from_symbols([("Author", 2), ("Cites", 2)])
        .unwrap()
        .into_shared();
    let mut db = StructureBuilder::new(voc, 7);
    // People 0–2, papers 3–6.
    for (person, paper) in [(0u32, 3u32), (0, 4), (1, 4), (1, 5), (2, 6)] {
        db.add_fact("Author", &[person, paper]).unwrap();
    }
    for (citing, cited) in [(4u32, 3u32), (5, 4), (6, 4), (3, 6)] {
        db.add_fact("Cites", &[citing, cited]).unwrap();
    }
    let db = db.finish();

    // Incoming query: authors whose paper cites a paper that cites
    // another — with a redundant extra atom a naive rewriter produced.
    let incoming = parse_query(
        "Q(A) :- Author(A, P), Cites(P, R), Cites(R, S), Author(A, P2), Cites(P2, R2).",
    )
    .unwrap();
    println!("incoming : {incoming}");

    // Step 1: minimize (core of the canonical database).
    let minimized = minimize(&incoming).unwrap();
    println!("minimized: {minimized}");
    assert!(equivalent(&incoming, &minimized).unwrap());
    assert!(minimized.body.len() < incoming.body.len());

    // Step 2: compare against the view catalog.
    let views = [
        ("citing_authors", "V(A) :- Author(A, P), Cites(P, R)."),
        (
            "chain_authors",
            "V(A) :- Author(A, P), Cites(P, R), Cites(R, S).",
        ),
        ("self_citers", "V(A) :- Author(A, P), Cites(P, P)."),
    ];
    for (name, src) in views {
        let view = parse_query(src).unwrap();
        let fits = contained_in(&minimized, &view).unwrap();
        let exact = equivalent(&minimized, &view).unwrap();
        println!("  view {name:15} contains incoming: {fits:5}  equivalent: {exact}");
    }

    // Step 3: Saraiya's fast path applies when the incoming query uses
    // every predicate at most twice.
    let view = parse_query("V(A) :- Author(A, P), Cites(P, R), Cites(R, S).").unwrap();
    if is_two_atom(&minimized) {
        let fast = two_atom_containment(&minimized, &view).unwrap();
        let slow = contained_in(&minimized, &view).unwrap();
        println!(
            "\nSaraiya fast path: {fast} (generic agrees: {})",
            fast == slow
        );
    }

    // Step 4: actually evaluate — containment was about *all*
    // databases; here is this one's answer.
    let answers = evaluate(&minimized, &db).unwrap();
    let people: Vec<u32> = answers.iter().map(|t| t[0].0).collect();
    println!("\nanswers over the bibliography: people {people:?}");
    assert!(answers.contains(&vec![Element(1)]));
}

//! Serving-shaped solving: compile a template once, stream instances.
//!
//! The paper's uniform algorithm answers `hom(A → B)` for any pair; in
//! the CSP(B) regime one template `B` is fixed while instances stream
//! against it. `Session::compile(B)` does the template-side work once —
//! the propagation support index, the Schaefer classification of `B`,
//! and the Booleanized template with *its* classification — so each
//! `session.solve(a)` pays only for per-instance analysis and search.
//!
//! ```text
//! cargo run --release --example session_batch
//! ```

use cqcs::core::{solve, CompiledTemplate, Session, Strategy};
use cqcs::structures::generators;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // The classic uniform workload: is each random graph 3-colorable?
    let k3 = generators::complete_graph(3);
    let instances: Vec<_> = (0..64u64)
        .map(|seed| generators::random_graph_nm(12, 20, seed))
        .collect();

    // One-shot calls: every solve re-compiles the template.
    let t = Instant::now();
    let one_shot: Vec<_> = instances
        .iter()
        .map(|a| solve(a, &k3, Strategy::Auto).unwrap())
        .collect();
    let t_one = t.elapsed();

    // Session: compile once, solve the whole batch.
    let t = Instant::now();
    let session = Session::compile(&k3);
    let batch = session.solve_batch(&instances);
    let t_batch = t.elapsed();

    let yes = batch.iter().filter(|s| s.homomorphism.is_some()).count();
    println!(
        "{} of {} instances 3-colorable ({} one-shot, {} via session)",
        yes,
        instances.len(),
        format_duration(t_one),
        format_duration(t_batch),
    );
    // Both entry points run the same routing code, so answers, routes,
    // and search statistics are identical.
    for (o, s) in one_shot.iter().zip(&batch) {
        assert_eq!(o.homomorphism.is_some(), s.homomorphism.is_some());
        assert_eq!(o.route, s.route);
        assert_eq!(o.stats, s.stats);
    }

    // A compiled template is immutable and `Sync`: share one across
    // threads (or shards) and open a cheap `Session` per worker.
    let template = Arc::new(CompiledTemplate::compile(&k3));
    let workers: Vec<_> = (0..4u64)
        .map(|w| {
            let t = Arc::clone(&template);
            std::thread::spawn(move || {
                let session = Session::from_template(t);
                (0..16)
                    .filter(|i| {
                        let a = generators::random_graph_nm(10, 15, w * 100 + i);
                        session.solve(&a).homomorphism.is_some()
                    })
                    .count()
            })
        })
        .collect();
    let colorable: usize = workers.into_iter().map(|h| h.join().unwrap()).sum();
    println!("4 workers sharing one compiled template: {colorable}/64 colorable");
}

fn format_duration(d: std::time::Duration) -> String {
    format!("{:.2} ms", d.as_secs_f64() * 1e3)
}

//! Delta-solve watches: register a check once, stream edits, get
//! notified exactly when the verdict flips.
//!
//! `Session::watch` keeps the compiled propagation engine's
//! arc-consistency fixpoint resident between updates: a small
//! `StructureDelta` re-seeds the worklist from its touched tuples
//! instead of rebinding the instance from scratch, and dispatch stages
//! whose outcome is provable from cached monotone facts (GYO
//! cyclicity, treewidth lower bounds, arc-consistency refutations) are
//! skipped. `DatalogWatch` does the same for least-fixpoint
//! containment checks — counting for the non-recursive strata, DRed
//! delete/re-derive for the recursive ones. Both report `Some(verdict)`
//! exactly when an update changes the answer, and both are pinned by
//! tests and experiment E17 to agree with from-scratch re-solves.
//!
//! ```text
//! cargo run --release --example watch_stream
//! ```

use cqcs::core::Session;
use cqcs::datalog::{programs, DatalogWatch};
use cqcs::structures::{generators, StructureBuilder, StructureDelta, Vocabulary};
use std::sync::Arc;

fn main() {
    // --- A 3-colorability watch. The template is K3 plus an empty
    // unary predicate P: asserting P(v) on an instance pins v to an
    // empty image, so arc consistency refutes — a knob for forcing
    // verdict flips on demand.
    let voc = Vocabulary::from_symbols([("E", 2), ("P", 1)])
        .unwrap()
        .into_shared();
    let mut b = StructureBuilder::new(Arc::clone(&voc), 3);
    for i in 0..3u32 {
        for j in 0..3u32 {
            if i != j {
                b.add_fact("E", &[i, j]).unwrap();
            }
        }
    }
    let session = Session::compile(&b.finish());

    // Register a 6-cycle (3-colorable) and stream edits against it.
    let mut b = StructureBuilder::new(Arc::clone(&voc), 6);
    for i in 0..6u32 {
        b.add_fact("E", &[i, (i + 1) % 6]).unwrap();
        b.add_fact("E", &[(i + 1) % 6, i]).unwrap();
    }
    let mut watch = session.watch(&b.finish());
    println!("registered: 3-colorable = {}", watch.verdict());

    // Each apply returns Some(new_verdict) exactly on a flip, None
    // when the answer is unchanged (however the update was absorbed).
    let script: [(&str, bool, &[u32]); 4] = [
        ("E", true, &[0, 3]), // a chord: still 3-colorable
        ("P", true, &[2]),    // pin vertex 2: refuted
        ("E", true, &[1, 4]), // grow while refuted: monotone, O(1)
        ("P", false, &[2]),   // unpin: satisfiable again
    ];
    for (rel, add, tuple) in script {
        let mut d = StructureDelta::new(watch.current());
        if add {
            d.add_fact(rel, tuple).unwrap();
        } else {
            d.retract_fact(rel, tuple).unwrap();
        }
        let sign = if add { "+" } else { "-" };
        match watch.apply(&d).unwrap() {
            Some(v) => println!("  {sign}{rel}{tuple:?}: verdict flipped -> {v}"),
            None => println!("  {sign}{rel}{tuple:?}: unchanged"),
        }
    }
    let stats = watch.stats();
    println!(
        "{} updates: {} fixpoint repairs, {} full establishes, {} monotone refutations\n",
        stats.updates,
        stats.repaired_establishes,
        stats.full_establishes,
        stats.monotone_refutations,
    );

    // --- A Datalog containment watch: "does this digraph have a
    // cycle?" as a least-fixpoint goal, maintained incrementally.
    let program = programs::cycle_detection();
    let mut b = StructureBuilder::new(generators::digraph_vocabulary(), 8);
    for i in 0..7u32 {
        b.add_fact("E", &[i, i + 1]).unwrap();
    }
    let mut watch = DatalogWatch::new(&program, &b.finish());
    println!("registered: path(8) has a cycle = {}", watch.goal_derived());

    let script: [(bool, [u32; 2]); 4] = [
        (true, [2, 4]),  // a shortcut: still acyclic
        (true, [7, 0]),  // close the loop: cycle appears
        (true, [3, 5]),  // edit inside the cycle: unchanged
        (false, [7, 0]), // cut the loop: cycle gone (DRed)
    ];
    for (add, [x, y]) in script {
        let mut d = StructureDelta::new(watch.current());
        if add {
            d.add_fact("E", &[x, y]).unwrap();
        } else {
            d.retract_fact("E", &[x, y]).unwrap();
        }
        let sign = if add { "+" } else { "-" };
        match watch.apply(&d).unwrap() {
            Some(v) => println!("  {sign}E[{x}, {y}]: goal flipped -> {v}"),
            None => println!("  {sign}E[{x}, {y}]: unchanged"),
        }
    }
    let stats = watch.eval().stats();
    println!(
        "{} incremental updates, {} full recomputes",
        stats.incremental_updates, stats.full_recomputes
    );
}

//! Quickstart: the paper's thesis in a dozen calls.
//!
//! Run with `cargo run --example quickstart`.

use cqcs::core::{analyze, solve, Route, Strategy};
use cqcs::cq::{contained_in, equivalent, minimize, parse_query};
use cqcs::structures::generators;

fn main() {
    // ── Conjunctive-query containment ──────────────────────────────
    // Chandra–Merlin: Q1 ⊑ Q2 iff a homomorphism D_{Q2} → D_{Q1}.
    let specific = parse_query("Q(X) :- Cites(X, Y), Cites(Y, Z), Cites(Z, X).").unwrap();
    let general = parse_query("Q(X) :- Cites(X, Y).").unwrap();
    println!("Q1 = {specific}");
    println!("Q2 = {general}");
    println!("Q1 ⊑ Q2? {}", contained_in(&specific, &general).unwrap());
    println!("Q2 ⊑ Q1? {}", contained_in(&general, &specific).unwrap());

    // Equivalence up to redundancy, and minimization via cores.
    let redundant = parse_query("Q(X) :- Cites(X, Y), Cites(X, Z).").unwrap();
    let minimal = minimize(&redundant).unwrap();
    println!("\n{redundant}  minimizes to  {minimal}");
    assert!(equivalent(&redundant, &minimal).unwrap());

    // ── Constraint satisfaction: the same problem ──────────────────
    // 2-coloring C6 = hom(C6 → K2); the uniform solver recognizes the
    // Boolean template as Schaefer (bijunctive + affine) and uses the
    // quadratic direct algorithm of Theorem 3.4.
    let c6 = generators::undirected_cycle(6);
    let k2 = generators::complete_graph(2);
    let sol = solve(&c6, &k2, Strategy::Auto).unwrap();
    println!(
        "\n2-coloring C6: route {:?}, colorable = {}",
        sol.route,
        sol.homomorphism.is_some()
    );
    assert_eq!(sol.route, Route::Schaefer);

    // CSP(C4) is 2-colorability in disguise (Example 3.8): the solver
    // discovers this via Booleanization into an affine template.
    let c4 = generators::directed_cycle(4);
    let c8 = generators::directed_cycle(8);
    let sol = solve(&c8, &c4, Strategy::Auto).unwrap();
    println!(
        "hom(C8 → C4): route {:?}, exists = {}",
        sol.route,
        sol.homomorphism.is_some()
    );
    assert_eq!(sol.route, Route::Booleanization);

    // A bounded-treewidth left structure dispatches to the §5 DP.
    let a = generators::partial_ktree(12, 2, 0.85, 7);
    let k3 = generators::complete_graph(3);
    let sol = solve(&a, &k3, Strategy::Auto).unwrap();
    println!("partial 2-tree vs K3: route {:?}", sol.route);

    // What did the dispatcher see?
    println!("\nInstance analysis for (C8, C4):\n{}", analyze(&c8, &c4));
}

//! The §4 pipeline, end to end: Datalog width, the existential
//! k-pebble game, and the canonical program ρ_B — three views of one
//! computation.
//!
//! Run with `cargo run --example pebble_datalog`.

use cqcs::datalog::{canonical_program, datalog_width, eval_semi_naive, parse_program, programs};
use cqcs::pebble::game::solve_game;
use cqcs::structures::generators;
use cqcs::structures::homomorphism::homomorphism_exists;

fn main() {
    // A user-written Datalog program, parsed and width-checked.
    let program = parse_program(
        "
        % is there an odd closed walk? (non-2-colorability, §4.1)
        P(X, Y) :- E(X, Y).
        P(X, Y) :- P(X, Z), E(Z, W), E(W, Y).
        Q :- P(X, X).
        ",
        "Q",
    )
    .unwrap();
    println!("program:\n{program}");
    println!("k-Datalog width: {}", datalog_width(&program));
    println!(
        "3-variable variant width: {}",
        datalog_width(&programs::non_two_colorability_3datalog())
    );

    // The canonical program ρ_B for B = K2 with 3 pebbles — the paper's
    // Theorem 4.7(2) construction, generated mechanically.
    let k2 = generators::complete_graph(2);
    let rho = canonical_program(&k2, 3);
    println!(
        "\nρ_K2 (k=3): {} predicates, {} rules, width {}",
        rho.num_preds(),
        rho.rules.len(),
        datalog_width(&rho)
    );

    // Three computations that provably coincide (Thm 4.7(2) + 4.8).
    println!("\ngraph    | ρ_B goal | Spoiler wins | ¬hom(G→K2)");
    println!("---------+----------+--------------+-----------");
    for (name, g) in [
        ("C5", generators::undirected_cycle(5)),
        ("C6", generators::undirected_cycle(6)),
        ("C7", generators::undirected_cycle(7)),
        ("grid2x3", generators::grid_graph(2, 3)),
    ] {
        let rho_says = eval_semi_naive(&rho, &g).goal_derived;
        let game = solve_game(&g, &k2, 3);
        let nohom = !homomorphism_exists(&g, &k2);
        assert_eq!(rho_says, !game.duplicator_wins);
        assert_eq!(rho_says, nohom, "completeness at k=3 for K2");
        println!(
            "{name:9}| {rho_says:8} | {:12} | {nohom}",
            !game.duplicator_wins
        );
    }

    // The game's statistics expose the O(n^{2k}) state space.
    let g = generators::random_digraph(10, 0.3, 1);
    let b = generators::random_digraph(4, 0.4, 2);
    for k in 1..=3 {
        let res = solve_game(&g, &b, k);
        println!(
            "\nk={k}: {} partial homomorphisms generated, {} survive, duplicator wins: {}",
            res.generated, res.surviving, res.duplicator_wins
        );
    }
}

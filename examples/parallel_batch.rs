//! Parallel batch solving: one compiled template, work-stealing
//! instance streams.
//!
//! `Session::par_solve_batch(batch, threads)` fans a batch of instances
//! out to scoped workers sharing one `CompiledTemplate`. Work is
//! distributed by an atomic chunk claimer plus steal-half deques, so a
//! batch mixing cheap tractable routes with expensive generic searches
//! stays balanced. Each worker keeps a persistent scratch — the
//! propagator is *reset* per instance instead of rebuilt, and the
//! search/GYO buffers are pooled — so even `threads = 1` beats a loop
//! of one-shot solves. The output is bit-identical to the sequential
//! `solve_batch`: same order, same verdicts, routes, witnesses, and
//! search statistics, whatever the thread count.
//!
//! ```text
//! cargo run --release --example parallel_batch
//! ```

use cqcs::core::{BatchExecutor, Session};
use cqcs::cq::{contained_in_batch, par_contained_in_batch, parse_query};
use cqcs::structures::generators;
use std::time::Instant;

fn main() {
    // 3-coloring a stream of random graphs against the fixed K3.
    let k3 = generators::complete_graph(3);
    let session = Session::compile(&k3);
    let batch: Vec<_> = (0..128u64)
        .map(|seed| generators::random_graph_nm(14, 27, seed))
        .collect();

    let t = Instant::now();
    let sequential = session.solve_batch(&batch);
    let t_seq = t.elapsed();

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let t = Instant::now();
    let parallel = session.par_solve_batch(&batch, threads);
    let t_par = t.elapsed();

    // Bit-identical output, whatever the schedule.
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.homomorphism.is_some(), p.homomorphism.is_some());
        assert_eq!(s.route, p.route);
        assert_eq!(s.stats, p.stats);
    }
    let yes = parallel.iter().filter(|s| s.homomorphism.is_some()).count();
    println!(
        "{yes}/{} instances 3-colorable — sequential {}, parallel×{threads} {}",
        batch.len(),
        ms(t_seq),
        ms(t_par),
    );

    // The executor also reports the batch's aggregate search effort
    // (per-worker accumulators merged once at the end).
    let (_, stats) = BatchExecutor::new(threads).solve_batch_with_stats(session.template(), &batch);
    println!(
        "aggregate effort: {} nodes, {} backtracks, {} deletions",
        stats.nodes, stats.backtracks, stats.deletions
    );

    // The containment face: many candidate queries against one fixed
    // query, verdict-identical to the sequential batch.
    let q2 = parse_query("Q(X) :- E(X, Y), E(Y, Z).").unwrap();
    let candidates: Vec<_> = (2..10usize)
        .map(|k| {
            let body: Vec<String> = (0..k)
                .map(|i| format!("E(V{i}, V{})", (i + 1) % k))
                .collect();
            parse_query(&format!("Q(V0) :- {}.", body.join(", "))).unwrap()
        })
        .collect();
    let seq = contained_in_batch(&candidates, &q2).unwrap();
    let par = par_contained_in_batch(&candidates, &q2, threads).unwrap();
    assert_eq!(seq, par);
    println!(
        "{}/{} candidate queries contained in Q2 (parallel ≡ sequential)",
        par.iter().filter(|&&c| c).count(),
        par.len()
    );
}

fn ms(d: std::time::Duration) -> String {
    format!("{:.2} ms", d.as_secs_f64() * 1e3)
}

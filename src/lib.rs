//! # cqcs — Conjunctive-Query Containment and Constraint Satisfaction
//!
//! A full Rust implementation of **Kolaitis & Vardi, PODS 1998 / JCSS
//! 2000**: conjunctive-query containment and constraint satisfaction
//! are the *same* problem — the homomorphism problem between finite
//! relational structures — and several non-uniform tractability results
//! **uniformize** into polynomial-time algorithms that take both
//! structures as input.
//!
//! The workspace (re-exported here as modules):
//!
//! * [`structures`] — relational structures, homomorphisms, products,
//!   sums, the binary encoding of Lemma 5.5, CSP round-trips, workload
//!   generators;
//! * [`boolean`] — §3: Schaefer classes, defining formulas, the SAT
//!   substrate, Theorem 3.4's direct algorithms, Booleanization;
//! * [`pebble`] — §4: existential k-pebble games and arc consistency;
//! * [`datalog`] — §4: the Datalog engine and the canonical program ρ_B;
//! * [`treewidth`] — §5: decompositions, the bounded-treewidth DP, the
//!   ∃FO^{k+1} translation, acyclic queries;
//! * [`core`] — the uniform solver dispatching across all routes;
//! * [`cq`] — conjunctive queries: parsing, containment, evaluation,
//!   minimization, Saraiya's two-atom case;
//! * [`net`] — the network front end: compiled templates served behind
//!   a TCP socket (length-prefixed wire protocol, LRU template
//!   registry, coalescing serving loop, blocking client).
//!
//! ## Quickstart
//!
//! ```
//! use cqcs::cq::{parse_query, contained_in, minimize};
//!
//! // Containment: the more constrained query is contained in the freer one.
//! let specific = parse_query("Q(X) :- E(X, Y), E(Y, X).").unwrap();
//! let general = parse_query("Q(X) :- E(X, Y).").unwrap();
//! assert!(contained_in(&specific, &general).unwrap());
//! assert!(!contained_in(&general, &specific).unwrap());
//!
//! // Minimization via cores.
//! let redundant = parse_query("Q(X) :- E(X, Y), E(X, Z).").unwrap();
//! assert_eq!(minimize(&redundant).unwrap().body.len(), 1);
//! ```
//!
//! And the CSP face of the same coin:
//!
//! ```
//! use cqcs::structures::generators;
//! use cqcs::core::{solve, Strategy, Route};
//!
//! // 2-coloring an even cycle = hom(C6 → K2): Schaefer route.
//! let c6 = generators::undirected_cycle(6);
//! let k2 = generators::complete_graph(2);
//! let sol = solve(&c6, &k2, Strategy::Auto).unwrap();
//! assert!(sol.homomorphism.is_some());
//! assert_eq!(sol.route, Route::Schaefer);
//! ```

pub use cqcs_boolean as boolean;
pub use cqcs_core as core;
pub use cqcs_cq as cq;
pub use cqcs_datalog as datalog;
pub use cqcs_net as net;
pub use cqcs_pebble as pebble;
pub use cqcs_structures as structures;
pub use cqcs_treewidth as treewidth;

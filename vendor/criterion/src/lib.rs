//! Minimal, offline, API-compatible subset of the `criterion` crate.
//!
//! The workspace's benches only need `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_with_input, bench_function,
//! finish}`, `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros. This harness times
//! each benchmark with `std::time::Instant` (median over `sample_size`
//! samples after a short warm-up) and prints one line per benchmark —
//! no statistics engine, no plots, no command-line protocol beyond
//! ignoring whatever flags cargo passes.

use std::fmt::Display;
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as in `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function`-style entry points.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Passed to the user's closure; `iter` measures one sample. Each
/// sample records its own batch size so mixed batch sizes (a cold
/// first sample vs warmed-up later ones) cannot skew the per-iteration
/// time.
pub struct Bencher {
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, which also sizes the sample so very fast bodies are
        // batched enough to be measurable.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed();
        let iters: u64 = if once < Duration::from_micros(20) {
            64
        } else {
            1
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.samples.push((start.elapsed(), iters));
    }

    fn nanos_per_iter(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|(d, iters)| d.as_secs_f64() * 1e9 / *iters as f64)
            .collect();
        ns.sort_by(f64::total_cmp);
        Some(ns[ns.len() / 2])
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_samples(full_id: &str, sample_size: usize, mut one_sample: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        one_sample(&mut bencher);
    }
    match bencher.nanos_per_iter() {
        Some(ns) => println!("{full_id:<56} {}", human(ns)),
        None => println!("{full_id:<56} (no samples: closure never called iter)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_samples(&full, self.sample_size, |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_samples(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_samples(&id.into_benchmark_id().id, 10, &mut f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes harness flags (e.g. --bench); accept and ignore.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &2u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert!(calls >= 3);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}

//! Minimal, offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds with no network access, so the handful of
//! `rand` APIs the code actually uses are reimplemented here:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`Rng::gen`], and [`seq::SliceRandom`]
//! (`shuffle`/`choose`). The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the
//! workspace's reproducible workload generators require (they never
//! depend on matching upstream `rand`'s exact stream).

pub mod rngs {
    /// Deterministic RNG with the same name and seeding entry point as
    /// `rand::rngs::StdRng`. Internally xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeding, as in `rand::SeedableRng` (only the `seed_from_u64` entry
/// point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        rngs::StdRng { s }
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span_minus_one = (hi - lo) as u64;
                if span_minus_one == u64::MAX {
                    // Full 64-bit range; adding 1 would overflow.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span_minus_one + 1)) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod seq {
    use super::Rng;

    /// The subset of `rand::seq::SliceRandom` the workspace uses.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

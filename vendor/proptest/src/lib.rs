//! Minimal, offline, API-compatible subset of the `proptest` crate.
//!
//! Provides exactly what the workspace's property tests use: the
//! [`Strategy`] trait (integer ranges, tuples, `prop_map`,
//! [`collection::vec`], [`any`]), a [`proptest!`] macro that runs each
//! test body over `ProptestConfig::cases` deterministically seeded
//! random cases, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` family. No shrinking: on failure the macro prints the
//! complete generated inputs (they are required to be `Debug`), which
//! is what you paste into a named regression test.
//!
//! Determinism: the RNG seed is derived from the test's module path and
//! name, so failures reproduce across runs and machines.

use std::fmt::Debug;

pub mod test_runner {
    use rand::{Rng as _, SeedableRng as _};

    /// Deterministic per-test RNG.
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Seeded from a stable FNV-1a hash of `name` (the fully
        /// qualified test path), so every run of a given test sees the
        /// same case sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(h),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.inner.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is skipped, not a failure.
    Reject,
    /// A `prop_assert!` failed with this message.
    Fail(String),
}

/// Runner configuration; only `cases` is supported.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count actually run: `PROPTEST_CASES` (honored by real
    /// proptest too) overrides the configured value when set.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_CASES must be a u32, got {v:?}")),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values. Unlike real proptest there is no shrinking
/// and no `ValueTree`; `generate` directly yields a value.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { source: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`]. Retries generation until the
/// predicate accepts (bounded, then panics).
pub struct Filter<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                // wrapping_sub + unsigned cast: exact span even for
                // signed ranges like i64::MIN..i64::MAX.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span_minus_one = hi.wrapping_sub(lo) as $u as u64;
                if span_minus_one == u64::MAX {
                    // Full 64-bit domain; adding 1 would overflow.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span_minus_one + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Debug + Sized {
    fn generate_arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn generate_arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn generate_arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over the whole domain of `T`, as in `proptest::any`.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::generate_arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Length specification for [`vec`], as in `proptest::collection::
    /// SizeRange`: built from a `usize`, `Range<usize>`, or
    /// `RangeInclusive<usize>` (so unsuffixed literals infer to
    /// `usize`, matching real proptest).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// `proptest::collection::vec`: element strategy + length range.
    pub struct VecStrategy<S> {
        element: S,
        length: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, length: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            length: length.into(),
        }
    }

    impl<S> Strategy for VecStrategy<S>
    where
        S: Strategy,
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.length.hi_inclusive - self.length.lo) as u64 + 1;
            let n = self.length.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "prop_assert!({}) failed at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format_args!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "prop_assert_eq! failed at {}:{}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "prop_assert_eq! failed at {}:{}: {}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                format_args!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "prop_assert_ne! failed at {}:{}\n  both: {:?}",
                file!(),
                line!(),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The `proptest!` macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running the body over `config.cases` generated
/// cases. Failures print every generated input; panics inside the body
/// are caught, annotated with the inputs, and re-raised.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < cases {
                    attempts += 1;
                    assert!(
                        attempts <= cases.saturating_mul(20).max(1000),
                        "proptest: too many rejected cases (prop_assume too strict?)"
                    );
                    let generated =
                        ($($crate::Strategy::generate(&($strat), &mut rng),)*);
                    let inputs = format!(
                        "  {} = {:#?}\n",
                        stringify!(($($arg),*)),
                        &generated
                    );
                    let ($($arg,)*) = generated;
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => accepted += 1,
                        Ok(Err($crate::TestCaseError::Reject)) => continue,
                        Ok(Err($crate::TestCaseError::Fail(msg))) => {
                            panic!(
                                "proptest case {} failed: {}\ninputs:\n{}",
                                accepted, msg, inputs
                            );
                        }
                        Err(cause) => {
                            eprintln!(
                                "proptest case {} panicked; inputs:\n{}",
                                accepted, inputs
                            );
                            ::std::panic::resume_unwind(cause);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn map_and_assume(n in (1usize..=8).prop_map(|n| n * 2)) {
            prop_assume!(n != 4);
            prop_assert!(n % 2 == 0 && n != 4);
        }

        #[test]
        fn tuple_and_any(pair in (0u32..4, any::<bool>())) {
            prop_assert!(pair.0 < 4);
        }
    }

    #[test]
    fn deterministic_rng_stable() {
        let mut a = crate::test_runner::TestRng::deterministic("x::y");
        let mut b = crate::test_runner::TestRng::deterministic("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
